//! The simulated manycore: cores, caches, directory, memory, log — and the
//! Rebound checkpointing machinery wired through all of them.
//!
//! The machine is a deterministic event-driven simulator. A single global
//! [`EventQueue`] orders per-core continuations, protocol-message
//! deliveries and background-writeback ticks; coherence transactions are
//! resolved atomically at the requesting core's access time with latencies
//! charged per Fig 4.3(a). Everything is reproducible from the seed.

mod access;
mod ckpt;
mod rollback;
mod sync;

use std::collections::VecDeque;

use rebound_coherence::{CoreSet, Directory, Interconnect, MsgStats};
use rebound_engine::{CoreId, Cycle, DetRng, EventQueue, LineAddr, LineGeometry, LineId};

use rebound_mem::{L1Line, L2Line, MainMemory, MemoryController, SetAssoc, UndoLog};
use rebound_workloads::{AppProfile, LineTable, Op, OpStream};

use crate::config::{MachineConfig, Scheme};
use crate::depregs::DepRegFile;
use crate::fault::{CorePhase, FaultTrigger, FiredFault, PendingFault};
use crate::metrics::{MachineMetrics, OverheadKind, StallBreakdown};
use crate::program::CoreProgram;
pub(crate) use crate::proto::{EpisodeState, InitState, ProtoError, ProtoMsg, WbKind};

/// Fixed cost of handling a cross-processor protocol interrupt, in cycles.
pub(crate) const PROTO_HANDLE_COST: u64 = 50;
/// Fixed cost of flash-setting the Delayed bits / rotating Dep sets.
pub(crate) const CKPT_LOCAL_SETUP_COST: u64 = 100;
/// Cost of logging the register state at a checkpoint.
pub(crate) const REG_LOG_COST: u64 = 60;
/// Cycles to flash-invalidate a core's caches during rollback.
pub(crate) const CACHE_INVAL_COST: u64 = 1_000;
/// Log-scan cost per record examined during rollback, per bank.
pub(crate) const LOG_SCAN_COST: u64 = 2;
/// Cost per restored line during rollback (log read + memory write).
pub(crate) const LOG_RESTORE_COST: u64 = 24;
/// Retry period while stalled for a free Dep register set.
pub(crate) const DEP_RETRY_PERIOD: u64 = 200;
/// Stall a store suffers when it hits a still-Delayed line and must push
/// the checkpoint value into the writeback buffer first (§4.1).
pub(crate) const DELAYED_FLUSH_STALL: u64 = 20;

/// Events on the global queue.
#[derive(Clone, Debug)]
pub(crate) enum Event {
    /// Run the next operation of a core (stale if `gen` mismatches).
    Step { core: CoreId, gen: u64 },
    /// Deliver a protocol message.
    Proto { to: CoreId, msg: ProtoMsg },
    /// Background delayed-writeback tick.
    DrainTick { core: CoreId, gen: u64 },
    /// Retry a checkpoint initiation after backoff.
    RetryCkpt { core: CoreId, gen: u64 },
    /// Retry Dep-register rotation (out-of-sets stall, §4.2).
    RetryRotate { core: CoreId },
    /// A fault becomes *detected* at this core (§3.2).
    FaultDetect { core: CoreId },
    /// Periodic forced checkpoint by the I/O core (§6.4).
    IoTick,
}

/// Why a core is not currently executing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Block {
    /// Spinning on the barrier flag (generation it is waiting to pass).
    BarrierFlag { gen: u64 },
    /// Queued on a lock.
    Lock { id: u32 },
    /// Stalled by the checkpoint machinery (initiator collection, NoDWB
    /// writebacks, waiting for resume, waiting for a Dep set, I/O ckpt).
    Ckpt,
    /// Being rolled back; will be rescheduled by the recovery code.
    Rollback,
}

/// A core's execution state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum RunState {
    /// Executing; a `Step` event is (or will be) scheduled.
    Ready,
    /// Blocked; someone will wake it.
    Blocked(Block),
    /// Program finished.
    Done,
}

/// One checkpoint record of a core (its "register state" plus metadata).
#[derive(Clone, Debug)]
pub(crate) struct CkptRecord {
    /// The stub sequence number this checkpoint writes on completion.
    pub stub_seq: u64,
    /// Program (architectural) snapshot at the checkpoint point.
    pub program: CoreProgram,
    /// Instructions retired at the checkpoint point.
    pub insts: u64,
    /// Store-sequence counter at the checkpoint point (so re-execution
    /// reproduces the same store values).
    pub store_seq: u64,
    /// Barrier releases the core had consumed at the checkpoint point.
    /// Restored on rollback so a re-executed arrival at an already-
    /// released barrier is recognized and sails through (§3.3.5: the
    /// recovery line may straddle a barrier when only some members'
    /// checkpoints are safe).
    pub barrier_passes: u64,
    /// Whether the core was parked at the barrier when this snapshot was
    /// taken (a waiting core can be conscripted into an episode). The
    /// snapshot's program counter is then already *past* the arrival, so
    /// rollback must either re-register the core as a waiter (episode
    /// still pending) or consume the release (it fired since) — dropping
    /// the arrival would strand every other core at the barrier.
    pub at_barrier: bool,
    /// The cycle the architectural snapshot was taken. Everything the
    /// core produced *after* this instant dies if the record becomes a
    /// rollback target — which is why `Rebound_Cluster`'s cross-cluster
    /// recovery bounds a consumer's target by its producer's target
    /// snapshot time (see `machine/rollback.rs`).
    pub taken_at: Cycle,
    /// The core's propagation epoch at the snapshot instant (post-bump:
    /// the record was taken the moment the epoch *became* this value,
    /// so its state contains influence only of data stamped with
    /// strictly older epochs). `Rebound_Epoch` derives recovery-line
    /// membership from this tag; other schemes leave it 0.
    pub epoch: u64,
    /// An interrupted op that was pending re-execution when the
    /// snapshot was taken (`Rebound_Epoch` snapshots intercept the
    /// triggering access *before* it consumes newer-epoch data, so the
    /// access itself is stashed here). Restored on rollback — dropping
    /// it would silently skip the op on re-execution.
    pub resume_op: Option<Op>,
    /// Completion time (stub written), once known.
    pub complete_at: Option<Cycle>,
}

/// Background delayed-writeback drain state (§4.1).
#[derive(Clone, Debug, Default)]
pub(crate) struct DrainState {
    /// Whether a drain is in progress.
    pub active: bool,
    /// Lines still to write back (skipped if their Delayed bit cleared).
    pub queue: VecDeque<LineAddr>,
    /// Dep-file interval whose data is draining.
    pub interval: u64,
    /// Stub to write at completion.
    pub stub_seq: u64,
    /// Accelerated drain after a Nack (§4.1).
    pub fast: bool,
    /// Invalidates stale `DrainTick` events.
    pub gen: u64,
}

/// Per-core simulator context.
#[derive(Clone, Debug)]
pub(crate) struct CoreCtx {
    pub id: CoreId,
    pub program: CoreProgram,
    pub run: RunState,
    /// Invalidates stale Step events after preemption.
    pub step_gen: u64,
    /// Time the core's current operation completes.
    pub busy_until: Cycle,
    /// Instructions retired.
    pub insts: u64,
    /// Instruction count at the start of the current checkpoint interval.
    pub interval_start_insts: u64,
    /// Instruction count at which the next interval checkpoint is due.
    /// The *first* due point is jittered per core: identical synthetic
    /// cores would otherwise cross their interval in lockstep, making
    /// every local checkpoint collide on memory bandwidth — real
    /// applications stagger naturally through rate variation.
    pub next_ckpt_due: u64,
    pub l1: SetAssoc<L1Line>,
    pub l2: SetAssoc<L2Line>,
    pub dep: DepRegFile,
    /// Monotonic counter making store values unique.
    pub store_seq: u64,
    /// Checkpoint records, oldest first (`records[0]` is boot).
    pub records: Vec<CkptRecord>,
    pub role: EpisodeState,
    pub drain: DrainState,
    /// When true the core may not execute app code (NoDWB ckpt stall).
    pub exec_gate: bool,
    /// Stall-cycle accounting.
    pub stall: StallBreakdown,
    /// Start of the current Ckpt block, with its category.
    pub block_since: Option<(Cycle, OverheadKind)>,
    /// Cycle of this core's last completed checkpoint (interval stats).
    pub last_ckpt_cycle: Cycle,
    /// Retry generation for checkpoint initiation backoff.
    pub retry_gen: u64,
    /// Forced-checkpoint flag (I/O pressure or OutputIo op).
    pub force_ckpt: bool,
    /// Set while the core has arrived at the barrier but not yet passed.
    pub at_barrier: bool,
    /// Barrier releases this core has consumed (monotonic except across
    /// rollback, which restores the checkpoint's count).
    pub barrier_passes: u64,
    /// Barrier-opt bookkeeping: Update section done / writebacks done.
    pub barck_arrived: bool,
    pub barck_wb_done: bool,
    pub barck_notified: bool,
    /// Got a BarCK while busy; will join once the current episode ends.
    pub barck_pending: bool,
    /// Initiation-epoch counter (stale-message filtering).
    pub ckpt_epoch: u64,
    /// In-band propagation epoch (`Rebound_Epoch`): a Lamport-style
    /// counter bumped at every interval snapshot and fast-forwarded on
    /// first observation of a newer stamp. Monotonic except across
    /// rollback, which reverts it to the target record's tag. Always 0
    /// under the other schemes.
    pub epoch: u64,
    /// No new initiation before this time (post-Busy random backoff,
    /// §3.3.4).
    pub backoff_until: Cycle,
    /// Highest *released* episode epoch seen per initiator. A CK? whose
    /// epoch is not newer is a straggler of a dead (aborted) episode and
    /// is declined instead of re-accepted — otherwise in-flight forwards
    /// and releases echo each other indefinitely.
    pub released_epochs: Vec<u64>,
    /// A writeback phase waiting for a free Dep register set (§4.2 stall).
    pub pending_wb: Option<WbKind>,
    /// An interrupted op to resume (remaining compute).
    pub resume_op: Option<Op>,
    pub ended_at: Option<Cycle>,
}

/// Machine-level lock table entry (locks are *lowered* to coherence
/// accesses on the lock line; this table only sequences ownership).
#[derive(Clone, Debug, Default)]
pub(crate) struct LockState {
    pub holder: Option<CoreId>,
    pub queue: VecDeque<CoreId>,
}

/// Global barrier state (one global barrier, as in the workloads).
#[derive(Clone, Debug, Default)]
pub(crate) struct BarrierState {
    /// Cores arrived in the current episode.
    pub arrived: usize,
    /// Release generation (sense-reversing).
    pub generation: u64,
    /// Cores spinning on the flag.
    pub waiters: Vec<CoreId>,
    /// The core that arrived last (sets the flag).
    pub last_arrival: Option<CoreId>,
    /// Barrier-opt: a BarCK episode is active.
    pub barck_active: bool,
    pub barck_initiator: Option<CoreId>,
    /// Members that sent BarCkDone.
    pub barck_done: CoreSet,
    /// All cores have arrived; release is gated on BarCkComplete.
    pub release_gated: bool,
}

/// Global-checkpoint scheme state.
#[derive(Clone, Debug, Default)]
pub(crate) struct GlobalState {
    pub active: bool,
    pub coordinator: Option<CoreId>,
    pub wb_done: CoreSet,
    /// Number of cores still draining the *previous* global checkpoint
    /// (Global_DWB: the next checkpoint must wait for these).
    pub draining: usize,
}

/// Summary of one completed simulation run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Total simulated cycles until the last core finished.
    pub cycles: u64,
    /// Total instructions retired across cores.
    pub insts: u64,
    /// Completed checkpoint episodes.
    pub checkpoints: u64,
    /// Completed rollback episodes.
    pub rollbacks: u64,
    /// Full metrics.
    pub metrics: MachineMetrics,
    /// Message traffic counters.
    pub msgs: MsgStats,
    /// Undo-log entry count at end of run.
    pub log_entries: u64,
    /// Largest per-interval log footprint (bytes).
    pub log_max_interval_bytes: u64,
    /// The scheme that ran.
    pub scheme: Scheme,
    /// Core count.
    pub cores: usize,
}

impl RunReport {
    /// Mean ICHK size as a fraction of the machine (Figs 6.1/6.2).
    pub fn ichk_fraction(&self) -> f64 {
        self.metrics.ichk_sizes.mean() / self.cores as f64
    }
}

/// The simulated manycore with Rebound support (Fig 3.1).
#[derive(Clone, Debug)]
pub struct Machine {
    pub(crate) cfg: MachineConfig,
    pub(crate) geom: LineGeometry,
    pub(crate) now: Cycle,
    pub(crate) queue: EventQueue<Event>,
    pub(crate) cores: Vec<CoreCtx>,
    /// The `Addr ↔ LineId` interner: every hot structure below is a flat
    /// array indexed by the dense id this table hands out.
    pub(crate) lines: LineTable,
    /// Per-line propagation-epoch stamps (`Rebound_Epoch`): the writer's
    /// epoch at the line's most recent store, indexed by dense `LineId`.
    /// Probed before an access consumes the line; a stamp newer than the
    /// reader's epoch forces a pre-consumption snapshot. Stamps survive
    /// writebacks and rollbacks — a stale-high stamp is sound (at worst
    /// one extra snapshot), a stale-low one would not be. Empty under
    /// the other schemes.
    pub(crate) line_epochs: Vec<u64>,
    pub(crate) dir: Directory,
    pub(crate) memory: MainMemory,
    pub(crate) mem_ctl: MemoryController,
    pub(crate) log: UndoLog,
    pub(crate) net: Interconnect,
    pub(crate) msgs: MsgStats,
    /// Run metrics (public for inspection between `step()` calls).
    pub metrics: MachineMetrics,
    pub(crate) locks: Vec<LockState>,
    pub(crate) barrier: BarrierState,
    pub(crate) global: GlobalState,
    pub(crate) rng: DetRng,
    pub(crate) done_cores: usize,
    pub(crate) dropped_msgs: u64,
    /// Runtime master switch for dependence tracking (§8: "selectively
    /// enable and disable Rebound for a certain period of time").
    pub(crate) tracking_enabled: bool,
    /// Protocol violations observed so far (typed diagnostics; see
    /// [`Machine::proto_errors`]).
    pub(crate) proto_errors: Vec<ProtoError>,
    /// Violations dropped once the diagnostic buffer filled; the count
    /// keeps the truncation visible in failure reports.
    pub(crate) proto_errors_dropped: u64,
    /// Armed phase/condition faults, polled after every event.
    pub(crate) pending_faults: Vec<PendingFault>,
    /// Every fault detection that actually happened, in detection order.
    pub(crate) fired_faults: Vec<FiredFault>,
    /// Cores being restored by the most recent rollback, and when their
    /// restoration completes — the observable recovery window.
    pub(crate) rollback_cores: CoreSet,
    pub(crate) rollback_until: Cycle,
}

impl Machine {
    /// Builds a machine whose cores all run `profile` for `quota`
    /// instructions each.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`MachineConfig::validate`].
    pub fn from_profile(cfg: &MachineConfig, profile: &AppProfile, quota: u64) -> Machine {
        let programs = (0..cfg.cores)
            .map(|c| {
                CoreProgram::stream(OpStream::new(
                    profile,
                    CoreId(c),
                    cfg.cores,
                    cfg.seed,
                    quota,
                ))
            })
            .collect();
        // A profile-sized interner: every address this profile's
        // generators can emit interns into the dense (hash-free) region.
        let lines = LineTable::for_profile(cfg.cores, profile);
        Machine::build(cfg, programs, lines)
    }

    /// Builds a machine with explicit per-core programs (used by tests and
    /// examples for deterministic scenarios). Script addresses need no
    /// profile bounds: they intern through a profile-agnostic table whose
    /// overflow map keeps arbitrary raw addresses correct.
    ///
    /// # Panics
    ///
    /// Panics if `programs.len() != cfg.cores` or the config is invalid.
    pub fn with_programs(cfg: &MachineConfig, programs: Vec<CoreProgram>) -> Machine {
        let lines = LineTable::universal(cfg.cores);
        Machine::build(cfg, programs, lines)
    }

    fn build(cfg: &MachineConfig, programs: Vec<CoreProgram>, lines: LineTable) -> Machine {
        cfg.validate().expect("invalid machine configuration");
        assert_eq!(programs.len(), cfg.cores, "one program per core");
        let geom = cfg.l2.geometry();
        let mut log =
            UndoLog::new(cfg.log_banks, cfg.log_entry_bytes).with_filter(cfg.log_first_wb_filter);
        let cores: Vec<CoreCtx> = programs
            .into_iter()
            .enumerate()
            .map(|(i, program)| {
                let id = CoreId(i);
                // Boot checkpoint: stub 0, complete at time zero.
                log.append_stub(id, 0);
                CoreCtx {
                    id,
                    records: vec![CkptRecord {
                        stub_seq: 0,
                        program: program.clone(),
                        insts: 0,
                        store_seq: 0,
                        barrier_passes: 0,
                        at_barrier: false,
                        taken_at: Cycle::ZERO,
                        epoch: 0,
                        resume_op: None,
                        complete_at: Some(Cycle::ZERO),
                    }],
                    program,
                    run: RunState::Ready,
                    step_gen: 0,
                    busy_until: Cycle::ZERO,
                    insts: 0,
                    interval_start_insts: 0,
                    next_ckpt_due: u64::MAX, // set after construction

                    l1: SetAssoc::new(cfg.l1),
                    l2: SetAssoc::new(cfg.l2),
                    dep: DepRegFile::new(cfg.dep_sets.max(2), cfg.wsig_bits, cfg.wsig_hashes),
                    store_seq: 0,
                    role: EpisodeState::Idle,
                    drain: DrainState::default(),
                    exec_gate: false,
                    stall: StallBreakdown::default(),
                    block_since: None,
                    last_ckpt_cycle: Cycle::ZERO,
                    retry_gen: 0,
                    force_ckpt: false,
                    at_barrier: false,
                    barrier_passes: 0,
                    barck_arrived: false,
                    barck_wb_done: false,
                    barck_notified: false,
                    barck_pending: false,
                    ckpt_epoch: 0,
                    epoch: 0,
                    backoff_until: Cycle::ZERO,
                    released_epochs: vec![0; cfg.cores],
                    pending_wb: None,
                    resume_op: None,
                    ended_at: None,
                }
            })
            .collect();
        let max_locks = 1024;
        let mut m = Machine {
            cfg: cfg.clone(),
            geom,
            now: Cycle::ZERO,
            queue: EventQueue::with_capacity(cfg.event_capacity()),
            dir: Directory::with_capacity(lines.dense_slots()),
            memory: MainMemory::with_capacity(lines.dense_slots()),
            line_epochs: if matches!(cfg.scheme, Scheme::Epoch { .. }) {
                vec![0; lines.dense_slots()]
            } else {
                Vec::new()
            },
            cores,
            lines,
            mem_ctl: MemoryController::new(cfg.mem_channels, cfg.mem_timing),
            log,
            net: Interconnect::new(cfg.net),
            msgs: MsgStats::new(),
            metrics: MachineMetrics::new(),
            locks: (0..max_locks).map(|_| LockState::default()).collect(),
            barrier: BarrierState::default(),
            global: GlobalState::default(),
            rng: DetRng::new(cfg.seed.wrapping_mul(0x9E37_79B9) ^ 0x00C0_FFEE),
            done_cores: 0,
            dropped_msgs: 0,
            tracking_enabled: true,
            proto_errors: Vec::new(),
            proto_errors_dropped: 0,
            pending_faults: Vec::new(),
            fired_faults: Vec::new(),
            rollback_cores: CoreSet::new(),
            rollback_until: Cycle::ZERO,
        };
        let interval = m.cfg.ckpt_interval_insts.max(1);
        for c in 0..m.cores.len() {
            // First checkpoint due in [0.6, 1.0] x interval, per-core.
            let jitter = m.rng.below(interval * 2 / 5 + 1);
            m.cores[c].next_ckpt_due = interval - jitter;
            m.schedule_step(CoreId(c), Cycle::ZERO);
        }
        if let Some(io) = cfg.io {
            m.queue.push(Cycle(io.period_cycles), Event::IoTick);
        }
        m
    }

    /// Current simulated time.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Number of cores.
    pub fn ncores(&self) -> usize {
        self.cores.len()
    }

    /// The memory image (for functional verification in tests). Keyed by
    /// dense [`rebound_engine::LineId`]; use [`Machine::line_table`] or the
    /// address-level helpers below to translate.
    pub fn memory(&self) -> &MainMemory {
        &self.memory
    }

    /// The `Addr ↔ LineId` interner.
    pub fn line_table(&self) -> &LineTable {
        &self.lines
    }

    /// The committed (memory-image) value of a line by wire address; zero
    /// if the line was never touched.
    pub fn committed_line_value(&self, line: LineAddr) -> u64 {
        self.lines
            .lookup(line)
            .map(|id| self.memory.read(id))
            .unwrap_or(0)
    }

    /// Sorted snapshot of the memory image by wire address (tests and
    /// debugging; the recovery oracle uses the borrowed visitors instead).
    pub fn memory_snapshot(&self) -> std::collections::BTreeMap<LineAddr, u64> {
        let mut map = std::collections::BTreeMap::new();
        self.for_each_resident_line(|addr, v| {
            map.insert(addr, v);
        });
        map
    }

    /// Visits every memory-resident (nonzero) line as `(wire address,
    /// committed value)`, in dense-id (= first-touch) order, without
    /// copying the image.
    pub fn for_each_resident_line(&self, mut f: impl FnMut(LineAddr, u64)) {
        for (id, v) in self.memory.iter_resident() {
            f(self.lines.addr_of(id), v);
        }
    }

    /// Visits every line currently holding *dirty* (not yet written back)
    /// data in some core's L2, by wire address. A line dirty in several
    /// runs' caches may be visited more than once; callers that need a
    /// set use [`Machine::dirty_lines`].
    pub fn for_each_dirty_line(&self, mut f: impl FnMut(LineAddr)) {
        for c in &self.cores {
            for (a, l) in c.l2.iter() {
                if l.state.is_dirty() {
                    f(a);
                }
            }
        }
    }

    /// The directory (for inspection in tests).
    pub fn directory(&self) -> &Directory {
        &self.dir
    }

    /// Directory footprint diagnostics: resident bytes of the packed
    /// entry plane and spill-arena occupancy. Pairs with
    /// [`Machine::queue_histogram`] as a post-run diagnosis surface, and
    /// backs the footprint numbers quoted in README/ROADMAP.
    pub fn dir_footprint(&self) -> rebound_coherence::DirFootprint {
        self.dir.footprint()
    }

    /// The undo log (for inspection in tests).
    pub fn undo_log(&self) -> &UndoLog {
        &self.log
    }

    /// Message-traffic counters.
    pub fn msg_stats(&self) -> &MsgStats {
        &self.msgs
    }

    /// Pending event count (diagnostics).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// The architecturally visible value of a line: the dirty copy in the
    /// owner's L2 if one exists, else memory. Used by tests comparing
    /// machine states.
    pub fn effective_line_value(&self, line: LineAddr) -> u64 {
        for c in &self.cores {
            if let Some(l) = c.l2.peek(line) {
                if l.state.is_dirty() {
                    return l.value;
                }
            }
        }
        self.committed_line_value(line)
    }

    /// Instructions retired by `core`.
    pub fn core_insts(&self, core: CoreId) -> u64 {
        self.cores[core.index()].insts
    }

    /// Number of cores whose program has finished.
    ///
    /// On a cleanly terminated machine this equals [`Machine::ncores`];
    /// anything less after [`Machine::run_to_completion`] means a core was
    /// lost (e.g. resurrected or double-counted by checkpoint plumbing).
    pub fn done_cores(&self) -> usize {
        self.done_cores
    }

    /// The store-sequence counter of `core`: how many stores it has
    /// retired. Store values are a pure function of `(core, store_seq)`,
    /// so two runs that agree on every core's final counter executed the
    /// same stores — the recovery oracle compares these across a faulty
    /// and a golden run.
    pub fn core_store_seq(&self, core: CoreId) -> u64 {
        self.cores[core.index()].store_seq
    }

    /// Every line currently holding *dirty* (not yet written back) data in
    /// some core's L2, sorted and deduplicated. Together with
    /// [`Machine::memory`] this is the complete architecturally visible
    /// data state; the recovery oracle unions it with the memory image so
    /// lines that never reached memory in one run still get compared.
    pub fn dirty_lines(&self) -> Vec<LineAddr> {
        let mut v = Vec::new();
        self.for_each_dirty_line(|a| v.push(a));
        v.sort();
        v.dedup();
        v
    }

    /// The `MyProducers` of `core`'s current interval (test introspection).
    pub fn my_producers(&self, core: CoreId) -> CoreSet {
        self.cores[core.index()].dep.active().my_producers
    }

    /// The `MyConsumers` of `core`'s current interval (test introspection).
    pub fn my_consumers(&self, core: CoreId) -> CoreSet {
        self.cores[core.index()].dep.active().my_consumers
    }

    /// Completed checkpoints (stubs written) of `core`.
    pub fn checkpoints_of(&self, core: CoreId) -> u64 {
        self.cores[core.index()]
            .records
            .iter()
            .filter(|r| r.complete_at.is_some())
            .count() as u64
            - 1 // exclude the boot record
    }

    /// Schedules a transient fault to be *detected* at `core` at `at`.
    /// (§3.2: detection happens within L cycles of occurrence; the caller
    /// chooses the detection instant directly.)
    pub fn schedule_fault_detection(&mut self, core: CoreId, at: Cycle) {
        assert!(core.index() < self.cores.len(), "core out of range");
        self.queue.push(at, Event::FaultDetect { core });
    }

    // ------------------------------------------------------------------
    // Phase-aware fault injection (observation + deferred scheduling)
    // ------------------------------------------------------------------

    /// Arms a fault on `victim`: time-based triggers go straight onto the
    /// event queue; condition triggers ([`FaultTrigger::OnPhase`],
    /// [`FaultTrigger::AfterNthCheckpoint`]) are re-evaluated after every
    /// event and detection is injected at the first matching boundary. A
    /// trigger whose condition never arises simply never fires.
    pub fn arm_fault(&mut self, victim: CoreId, trigger: FaultTrigger) {
        assert!(victim.index() < self.cores.len(), "core out of range");
        match trigger {
            FaultTrigger::AtCycle(t) => self.schedule_fault_detection(victim, Cycle(t)),
            FaultTrigger::Storm { count, start, gap } => {
                for i in 0..count as u64 {
                    let at = start.saturating_add(i.saturating_mul(gap.max(1)));
                    self.schedule_fault_detection(victim, Cycle(at));
                }
            }
            FaultTrigger::OnPhase(_) | FaultTrigger::AfterNthCheckpoint(_) => {
                self.pending_faults.push(PendingFault { victim, trigger });
            }
        }
    }

    /// Evaluates armed condition faults against the current machine
    /// state; each fires at most once, as a detection at the current
    /// cycle. Called after every processed event.
    pub(crate) fn poll_pending_faults(&mut self) {
        let mut i = 0;
        while i < self.pending_faults.len() {
            let PendingFault { victim, trigger } = self.pending_faults[i];
            if trigger.matches(self, victim) {
                self.pending_faults.swap_remove(i);
                let now = self.now;
                self.schedule_fault_detection(victim, now);
            } else {
                i += 1;
            }
        }
    }

    /// Armed condition faults that have not fired (diagnostics; a
    /// finished run with leftovers means those windows never opened).
    pub fn unfired_fault_count(&self) -> usize {
        self.pending_faults.len()
    }

    /// Every fault detection that actually happened, in detection order —
    /// the resolved cycle of each armed or scheduled fault.
    pub fn fired_faults(&self) -> &[FiredFault] {
        &self.fired_faults
    }

    /// The externally observable checkpoint-episode phase of `core`.
    pub fn core_phase(&self, core: CoreId) -> CorePhase {
        match &self.cores[core.index()].role {
            EpisodeState::Idle => CorePhase::Idle,
            EpisodeState::Initiating(st) if !st.started => CorePhase::Collecting,
            EpisodeState::Initiating(_) => CorePhase::InitiatorWb,
            EpisodeState::Accepted { .. } => CorePhase::Accepted,
            EpisodeState::Member { .. } => CorePhase::Member,
            EpisodeState::GlobalMember { .. } => CorePhase::GlobalMember,
            EpisodeState::BarMember { .. } => CorePhase::BarrierMember,
            // An epoch snapshot has no coordination peers; for phase-
            // aware fault triggers it is the scheme's member-writeback
            // window (so `mid-join` plans reach Rebound_Epoch too).
            EpisodeState::EpochSnap { .. } => CorePhase::Member,
        }
    }

    /// Lines still queued in `core`'s background delayed-writeback drain
    /// (§4.1), or `None` when no drain is in progress.
    pub fn drain_depth(&self, core: CoreId) -> Option<usize> {
        let d = &self.cores[core.index()].drain;
        d.active.then_some(d.queue.len())
    }

    /// Whether a barrier-optimization checkpoint episode is active
    /// anywhere in the machine (§4.2.1).
    pub fn barrier_episode_active(&self) -> bool {
        self.barrier.barck_active
    }

    /// The open recovery window, if any: the cores the most recent
    /// rollback is restoring and the cycle their restoration completes.
    pub fn rollback_window(&self) -> Option<(CoreSet, Cycle)> {
        (self.now < self.rollback_until).then_some((self.rollback_cores, self.rollback_until))
    }

    // ------------------------------------------------------------------
    // Protocol-kernel plumbing and diagnostics
    // ------------------------------------------------------------------

    /// Records a protocol violation. The machine keeps running — the
    /// offending message/primitive is treated as dropped — but the typed
    /// diagnosis is preserved so a later oracle failure or deadlock can
    /// name the core, episode epoch and transition that went wrong.
    pub(crate) fn note_proto_error(&mut self, e: ProtoError) {
        // Bounded: a pathological livelock must not turn the diagnostic
        // buffer into the machine's largest allocation. Overflow is
        // counted, never silent — the summary reports how many typed
        // diagnoses the bound discarded.
        if self.proto_errors.len() < 64 {
            self.proto_errors.push(e);
        } else {
            self.proto_errors_dropped += 1;
        }
    }

    /// Every protocol violation observed so far, in detection order.
    /// Empty on a healthy run: benign protocol races (stale epochs,
    /// dead-episode stragglers) are counted as dropped messages, not
    /// errors. The buffer is bounded at 64 entries;
    /// [`Machine::proto_errors_dropped`] counts any overflow.
    pub fn proto_errors(&self) -> &[ProtoError] {
        &self.proto_errors
    }

    /// Violations discarded after the diagnostic buffer filled.
    pub fn proto_errors_dropped(&self) -> u64 {
        self.proto_errors_dropped
    }

    /// One-line rendering of [`Machine::proto_errors`] for failure
    /// reports (empty string when there are none), including how many
    /// further violations the bounded buffer discarded.
    pub fn proto_error_summary(&self) -> String {
        let mut s = self
            .proto_errors
            .iter()
            .map(|e| e.to_string())
            .collect::<Vec<_>>()
            .join("; ");
        if self.proto_errors_dropped > 0 {
            use std::fmt::Write as _;
            let _ = write!(s, " (+{} more dropped)", self.proto_errors_dropped);
        }
        s
    }

    /// The pure kernel transition `msg` would take at `to` right now —
    /// an observation, nothing is applied. Exposed for diagnostics and
    /// the state-machine exhaustiveness tests.
    pub fn proto_transition(
        &self,
        to: CoreId,
        msg: &ProtoMsg,
    ) -> Result<crate::proto::Transition, ProtoError> {
        crate::proto::transition(self, to, msg)
    }

    /// The episode state of `core`.
    pub fn episode_state(&self, core: CoreId) -> &EpisodeState {
        &self.cores[core.index()].role
    }

    /// Forces `core` into an arbitrary episode state, bypassing the
    /// protocol. Test scaffolding for the exhaustiveness properties;
    /// real transitions only ever happen through the kernel.
    #[doc(hidden)]
    pub fn force_episode_state(&mut self, core: CoreId, state: EpisodeState) {
        self.cores[core.index()].role = state;
    }

    /// Delivers `msg` to `to` through the kernel immediately (no
    /// network latency). Test scaffolding for the exhaustiveness
    /// properties.
    #[doc(hidden)]
    pub fn inject_proto_msg(&mut self, to: CoreId, msg: ProtoMsg) {
        self.handle_proto(to, msg);
    }

    // ------------------------------------------------------------------
    // Event plumbing
    // ------------------------------------------------------------------

    pub(crate) fn schedule_step(&mut self, core: CoreId, at: Cycle) {
        let c = &mut self.cores[core.index()];
        c.step_gen += 1;
        let gen = c.step_gen;
        self.queue.push(at, Event::Step { core, gen });
    }

    /// Sends a protocol message with interconnect latency, recording it
    /// (local self-deliveries are not network traffic and are not counted).
    pub(crate) fn send(
        &mut self,
        from: CoreId,
        to: CoreId,
        kind: rebound_coherence::MsgKind,
        msg: ProtoMsg,
    ) {
        if from != to {
            self.msgs.record(kind);
        }
        let lat = self.net.one_way(from, to).max(1);
        self.queue.push(self.now + lat, Event::Proto { to, msg });
    }

    /// Starts (or extends) a `Ckpt` block on a core, tagging subsequent
    /// blocked time with `kind`.
    pub(crate) fn block_ckpt(&mut self, core: CoreId, kind: OverheadKind) {
        let now = self.now;
        let c = &mut self.cores[core.index()];
        // A finished core can still be conscripted into a checkpoint
        // episode (its dirty data must drain), but it has no execution to
        // park or resume: flipping it to Blocked would let unblock_ckpt
        // resurrect it to Ready and re-execute Op::End, double-counting
        // done_cores.
        if c.run == RunState::Done {
            return;
        }
        if let Some((since, k)) = c.block_since.take() {
            c.stall.add(k, now.saturating_since(since));
        }
        c.block_since = Some((now, kind));
        c.run = RunState::Blocked(Block::Ckpt);
        c.step_gen += 1; // cancel any scheduled step
    }

    /// Re-tags an ongoing Ckpt block with a new category, flushing elapsed
    /// time into the old one.
    pub(crate) fn retag_block(&mut self, core: CoreId, kind: OverheadKind) {
        let now = self.now;
        let c = &mut self.cores[core.index()];
        if let Some((since, k)) = c.block_since.take() {
            c.stall.add(k, now.saturating_since(since));
        }
        c.block_since = Some((now, kind));
    }

    /// Ends a Ckpt block and resumes execution (if not gated or done).
    pub(crate) fn unblock_ckpt(&mut self, core: CoreId) {
        let now = self.now;
        let c = &mut self.cores[core.index()];
        if let Some((since, k)) = c.block_since.take() {
            c.stall.add(k, now.saturating_since(since));
        }
        if c.run == RunState::Blocked(Block::Ckpt) {
            c.run = RunState::Ready;
        }
        if c.run == RunState::Ready && !c.exec_gate {
            let at = c.busy_until.max(now);
            self.schedule_step(core, at);
        }
    }

    // ------------------------------------------------------------------
    // Main loop
    // ------------------------------------------------------------------

    /// Whether the run is finished: all programs done, no checkpoint or
    /// drain activity outstanding.
    pub fn is_finished(&self) -> bool {
        self.done_cores == self.cores.len()
            && !self.global.active
            && !self.barrier.barck_active
            && self
                .cores
                .iter()
                .all(|c| c.role == EpisodeState::Idle && !c.drain.active)
    }

    /// Processes one event. Returns `false` when nothing is left to do.
    pub fn step(&mut self) -> bool {
        if self.is_finished() {
            return false;
        }
        let Some((t, ev)) = self.queue.pop() else {
            // Queue empty but not finished — a liveness bug; surface
            // loudly, with any recorded protocol violations attached so
            // the deadlock is attributable from a campaign CSV row.
            panic!(
                "event queue drained with live state: {} done of {}, roles {:?}{}",
                self.done_cores,
                self.cores.len(),
                self.cores
                    .iter()
                    .map(|c| c.role.clone())
                    .collect::<Vec<_>>(),
                if self.proto_errors.is_empty() {
                    String::new()
                } else {
                    format!("; proto errors: {}", self.proto_error_summary())
                }
            );
        };
        debug_assert!(t >= self.now, "time went backwards");
        self.now = t;
        match ev {
            Event::Step { core, gen } => {
                if self.cores[core.index()].step_gen == gen {
                    self.exec_step(core);
                }
            }
            Event::Proto { to, msg } => self.handle_proto(to, msg),
            Event::DrainTick { core, gen } => {
                if self.cores[core.index()].drain.gen == gen {
                    self.drain_tick(core);
                }
            }
            Event::RetryCkpt { core, gen } => {
                if self.cores[core.index()].retry_gen == gen {
                    self.retry_initiation(core);
                }
            }
            Event::RetryRotate { core } => self.retry_rotation(core),
            Event::FaultDetect { core } => self.handle_fault_detect(core),
            Event::IoTick => self.handle_io_tick(),
        }
        if !self.pending_faults.is_empty() {
            self.poll_pending_faults();
        }
        true
    }

    /// Runs until finished and summarizes.
    pub fn run_to_completion(&mut self) -> RunReport {
        while self.step() {}
        self.report()
    }

    /// Runs until `deadline` (or completion) and reports progress.
    pub fn run_until(&mut self, deadline: Cycle) -> bool {
        while !self.is_finished() {
            match self.queue.peek_time() {
                Some(t) if t <= deadline => {
                    self.step();
                }
                _ => break,
            }
        }
        self.is_finished()
    }

    /// Builds the run summary.
    pub fn report(&self) -> RunReport {
        let cycles = self
            .cores
            .iter()
            .map(|c| c.ended_at.unwrap_or(self.now).raw())
            .max()
            .unwrap_or(0)
            .max(self.now.raw());
        let mut metrics = self.metrics.clone();
        metrics.breakdown = StallBreakdown::default();
        for c in &self.cores {
            metrics.breakdown.merge(&c.stall);
        }
        metrics.insts = self.cores.iter().map(|c| c.insts).sum();
        metrics.dep_stalls = self.cores.iter().map(|c| c.dep.rotation_stalls).sum();
        metrics.log_entries = self.log.entries;
        RunReport {
            cycles,
            insts: metrics.insts,
            checkpoints: metrics.checkpoint_episodes,
            rollbacks: metrics.rollbacks,
            metrics,
            msgs: self.msgs.clone(),
            log_entries: self.log.entries.get(),
            log_max_interval_bytes: self.log.max_interval_bytes(),
            scheme: self.cfg.scheme,
            cores: self.cores.len(),
        }
    }

    // ------------------------------------------------------------------
    // Core execution
    // ------------------------------------------------------------------

    /// Executes the next operation of `core`.
    fn exec_step(&mut self, core: CoreId) {
        let idx = core.index();
        if self.cores[idx].run != RunState::Ready || self.cores[idx].exec_gate {
            return;
        }
        // Checkpoint-interval trigger (and forced I/O checkpoints).
        if self.maybe_trigger_checkpoint(core) {
            return;
        }
        let op = match self.cores[idx].resume_op.take() {
            Some(op) => op,
            None => self.cores[idx].program.next_op(),
        };
        match op {
            Op::Compute(n) => {
                let c = &mut self.cores[idx];
                c.insts += n;
                c.busy_until = self.now + n;
                let at = c.busy_until;
                self.schedule_step(core, at);
            }
            Op::Load(addr) => {
                // Rebound_Epoch: a line stamped with a newer epoch forces
                // a snapshot *before* the data is consumed.
                if self.epoch_probe(core, addr, op) {
                    return;
                }
                let lat = self.access(core, addr, false, true);
                self.metrics.load_latency.record(lat);
                let c = &mut self.cores[idx];
                c.insts += 1;
                c.busy_until = self.now + lat.max(1);
                let at = c.busy_until;
                self.schedule_step(core, at);
            }
            Op::Store(addr) => {
                // A store also observes the line it overwrites (the undo
                // log keeps its old value as a before-image, and the
                // dependence tracker records the transfer), so it probes
                // like a load under Rebound_Epoch.
                if self.epoch_probe(core, addr, op) {
                    return;
                }
                // Stores retire through the store buffer: the coherence
                // work happens now, the core only pays one cycle.
                let _ = self.access(core, addr, true, true);
                let c = &mut self.cores[idx];
                c.insts += 1;
                c.busy_until = self.now + 1;
                let at = c.busy_until;
                self.schedule_step(core, at);
            }
            Op::LockAcquire(id) => self.lock_acquire(core, id),
            Op::LockRelease(id) => self.lock_release(core, id),
            Op::Barrier => self.barrier_arrive(core),
            Op::OutputIo => self.output_io(core),
            Op::CheckpointHint => {
                self.cores[idx].force_ckpt = true;
                self.schedule_step(core, self.now + 1);
            }
            Op::End => {
                let c = &mut self.cores[idx];
                if c.run != RunState::Done {
                    c.run = RunState::Done;
                    c.ended_at = Some(self.now);
                    self.done_cores += 1;
                }
            }
        }
    }

    /// Deterministic store value: unique per (core, store sequence).
    pub(crate) fn store_value(&mut self, core: CoreId) -> u64 {
        let c = &mut self.cores[core.index()];
        c.store_seq += 1;
        let seq = c.store_seq;
        Self::mix_store_value(core, seq)
    }

    /// The value a store by `core` would carry *without* advancing the
    /// sequence counter — used for sync-machinery writes, which must not
    /// perturb the application's (core, store_seq) value stream.
    pub(crate) fn peek_store_value(&self, core: CoreId) -> u64 {
        Self::mix_store_value(core, self.cores[core.index()].store_seq)
    }

    fn mix_store_value(core: CoreId, seq: u64) -> u64 {
        let mut z = ((core.index() as u64) << 48) ^ seq;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z | 1 // never zero, so MainMemory keeps it resident
    }

    /// The home tile of a line (address-interleaved).
    pub(crate) fn home_of(&self, line: LineAddr) -> CoreId {
        CoreId(line.home_of(self.cores.len()).index())
    }

    /// The propagation-epoch stamp of a line (`Rebound_Epoch`): the
    /// writer's epoch at its most recent store; 0 if never stamped.
    pub(crate) fn line_epoch(&self, id: LineId) -> u64 {
        self.line_epochs.get(id.index()).copied().unwrap_or(0)
    }

    /// Stamps a line with its writer's current epoch at store time
    /// (overwrite, not max: the stamp describes the provenance of the
    /// line's *current* data). Grows on demand for overflow-interned
    /// script addresses, mirroring `MainMemory::write`.
    pub(crate) fn stamp_line_epoch(&mut self, id: LineId, epoch: u64) {
        let i = id.index();
        if i >= self.line_epochs.len() {
            if epoch == 0 {
                return;
            }
            self.line_epochs.resize(i + 1, 0);
        }
        self.line_epochs[i] = epoch;
    }

    /// The propagation epoch of `core` (test introspection).
    pub fn core_epoch(&self, core: CoreId) -> u64 {
        self.cores[core.index()].epoch
    }

    /// Enables or disables dependence tracking at runtime (§8). While
    /// disabled, accesses record no LW-ID/WSIG/Dep state, so subsequent
    /// checkpoints see no new interaction edges; checkpointing itself
    /// (and its correctness machinery) is unaffected.
    pub fn set_tracking_enabled(&mut self, enabled: bool) {
        self.tracking_enabled = enabled;
    }

    /// Whether `addr` participates in dependence tracking: the scheme must
    /// track, the runtime switch must be on, and the address must not fall
    /// in a configured untracked range.
    pub(crate) fn tracks_addr(&self, addr: rebound_engine::Addr) -> bool {
        if !self.cfg.scheme.tracks_dependences() || !self.tracking_enabled {
            return false;
        }
        !self
            .cfg
            .untracked_ranges
            .iter()
            .any(|&(lo, hi)| addr.0 >= lo && addr.0 < hi)
    }

    /// The Dep-register bit index representing `core` (its cluster id at
    /// granularities above 1; the §8 clustered-directory extension).
    pub(crate) fn dep_bit_of(&self, core: CoreId) -> CoreId {
        CoreId(core.index() / self.cfg.dep_cluster.max(1))
    }

    /// Expands a set of Dep-register bits into the set of cores they name.
    pub(crate) fn expand_dep_bits(&self, bits: CoreSet) -> CoreSet {
        let g = self.cfg.dep_cluster.max(1);
        if g == 1 {
            return bits;
        }
        let mut out = CoreSet::new();
        for b in bits.iter() {
            for i in 0..g {
                let c = b.index() * g + i;
                if c < self.cores.len() {
                    out.insert(CoreId(c));
                }
            }
        }
        out
    }

    /// Every core in `core`'s cluster (including itself).
    pub(crate) fn cluster_mates(&self, core: CoreId) -> CoreSet {
        self.expand_dep_bits(CoreSet::singleton(self.dep_bit_of(core)))
    }

    /// Every core in `core`'s *scheme-level* checkpoint cluster
    /// (including itself): the static k-core partition under
    /// `Rebound_Cluster{k}`, just `{core}` for every other scheme.
    pub(crate) fn scheme_cluster_mates(&self, core: CoreId) -> CoreSet {
        let k = self.cfg.scheme.cluster_k();
        if k == 1 {
            return CoreSet::singleton(core);
        }
        let base = (core.index() / k) * k;
        let mut s = CoreSet::new();
        for i in base..(base + k).min(self.cores.len()) {
            s.insert(CoreId(i));
        }
        s
    }

    /// The full checkpoint unit of `core`: its dep-granularity cluster
    /// (§8 clustered-directory extension) united with its scheme-level
    /// cluster. Whenever any core of the unit checkpoints or rolls
    /// back, the whole unit does.
    pub(crate) fn ckpt_unit(&self, core: CoreId) -> CoreSet {
        self.cluster_mates(core)
            .union(self.scheme_cluster_mates(core))
    }
}

impl Machine {
    /// Histogram of pending event kinds (diagnostics).
    pub fn queue_histogram(&self) -> Vec<(String, usize)> {
        use std::collections::HashMap;
        let mut h: HashMap<String, usize> = HashMap::new();
        for e in self.queue.iter_payloads() {
            let k = match e {
                Event::Step { .. } => "Step".to_string(),
                Event::Proto { msg, .. } => format!("Proto::{:?}", std::mem::discriminant(msg)),
                Event::DrainTick { .. } => "DrainTick".to_string(),
                Event::RetryCkpt { .. } => "RetryCkpt".to_string(),
                Event::RetryRotate { .. } => "RetryRotate".to_string(),
                Event::FaultDetect { .. } => "FaultDetect".to_string(),
                Event::IoTick => "IoTick".to_string(),
            };
            *h.entry(k).or_insert(0) += 1;
        }
        let mut v: Vec<_> = h.into_iter().collect();
        // Most frequent first, ties broken by name: two runs of the same
        // failing scenario must print byte-identical diagnoses, so the
        // order can never depend on HashMap iteration.
        v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        v
    }
}

impl Machine {
    /// Debug dump of the machine-level synchronization and episode state
    /// (diagnostics; pairs with [`Machine::debug_roles`]).
    pub fn debug_sync_state(&self) -> String {
        let b = &self.barrier;
        let mut s = format!(
            "barrier: arrived={} gen={} waiters={} last={:?} barck_active={} \
             barck_init={:?} barck_done={} release_gated={}\n",
            b.arrived,
            b.generation,
            b.waiters.len(),
            b.last_arrival,
            b.barck_active,
            b.barck_initiator,
            b.barck_done,
            b.release_gated,
        );
        s.push_str(&format!(
            "global: active={} coordinator={:?} wb_done={} draining={}\n",
            self.global.active, self.global.coordinator, self.global.wb_done, self.global.draining,
        ));
        let flags: Vec<String> = self
            .cores
            .iter()
            .filter(|c| c.barck_arrived || c.barck_pending || c.barck_wb_done || c.barck_notified)
            .map(|c| {
                format!(
                    "P{}(arr={} pend={} wb={} ntf={})",
                    c.id.index(),
                    c.barck_arrived,
                    c.barck_pending,
                    c.barck_wb_done,
                    c.barck_notified
                )
            })
            .collect();
        s.push_str(&format!("barck core flags: {}\n", flags.join(" ")));
        s
    }

    /// Debug dump of each core's protocol state (diagnostics).
    pub fn debug_roles(&self) -> String {
        let mut s = String::new();
        for c in &self.cores {
            s.push_str(&format!(
                "P{}: run={:?} role={:?} drain={} gate={} insts={} epoch={}\n",
                c.id.index(),
                c.run,
                match &c.role {
                    EpisodeState::Idle => "Idle".to_string(),
                    EpisodeState::Initiating(st) => format!(
                        "Init(e{} ichk={} awaiting={} wbd={} started={})",
                        st.epoch,
                        st.ichk,
                        st.expected.iter().map(|&c| c as u32).sum::<u32>(),
                        st.wb_done,
                        st.started
                    ),
                    r => format!("{r:?}"),
                },
                c.drain.active,
                c.exec_gate,
                c.insts,
                c.ckpt_epoch,
            ));
        }
        s
    }
}

impl Machine {
    /// Pops and describes one event without filtering (diagnostics).
    pub fn trace_step(&mut self) -> Option<String> {
        if self.is_finished() {
            return None;
        }
        let desc = {
            // Peek at the next event by popping manually.
            let (t, ev) = self.queue.pop()?;
            let d = format!("{:>9} {:?}", t.raw(), ev);
            self.now = t;
            match ev {
                Event::Step { core, gen } => {
                    let c = &self.cores[core.index()];
                    let live = c.step_gen == gen;
                    let d2 = format!("{d} live={live} run={:?} busy={}", c.run, c.busy_until);
                    if live {
                        self.exec_step(core);
                    }
                    d2
                }
                Event::Proto { to, msg } => {
                    self.handle_proto(to, msg);
                    d
                }
                Event::DrainTick { core, gen } => {
                    if self.cores[core.index()].drain.gen == gen {
                        self.drain_tick(core);
                    }
                    d
                }
                Event::RetryCkpt { core, gen } => {
                    if self.cores[core.index()].retry_gen == gen {
                        self.retry_initiation(core);
                    }
                    d
                }
                Event::RetryRotate { core } => {
                    self.retry_rotation(core);
                    d
                }
                Event::FaultDetect { core } => {
                    self.handle_fault_detect(core);
                    d
                }
                Event::IoTick => {
                    self.handle_io_tick();
                    d
                }
            }
        };
        if !self.pending_faults.is_empty() {
            self.poll_pending_faults();
        }
        Some(desc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rebound_engine::Addr;

    fn cfg(n: usize) -> MachineConfig {
        let mut c = MachineConfig::small(n);
        c.scheme = Scheme::None;
        c
    }

    #[test]
    fn empty_programs_finish_immediately() {
        let programs = (0..2).map(|_| CoreProgram::script([])).collect();
        let mut m = Machine::with_programs(&cfg(2), programs);
        let r = m.run_to_completion();
        assert_eq!(r.insts, 0);
        assert!(m.is_finished());
    }

    #[test]
    fn compute_advances_time_by_instruction_count() {
        let programs = vec![CoreProgram::script([Op::Compute(1_000)])];
        let mut m = Machine::with_programs(&cfg(1), programs);
        let r = m.run_to_completion();
        assert_eq!(r.insts, 1_000);
        assert!(r.cycles >= 1_000);
    }

    #[test]
    fn store_then_load_round_trips_value() {
        let a = Addr(0x1000);
        let programs = vec![CoreProgram::script([Op::Store(a), Op::Load(a)])];
        let mut m = Machine::with_programs(&cfg(1), programs);
        m.run_to_completion();
        // The value must be in the L2 (dirty) and not yet in memory.
        let line = a.line(LineGeometry::default());
        let l2 = &m.cores[0].l2;
        let entry = l2.peek(line).expect("line cached");
        assert!(entry.state.is_dirty());
        assert_eq!(
            m.committed_line_value(line),
            0,
            "write-back: memory still stale"
        );
    }

    #[test]
    fn report_counts_all_cores_instructions() {
        let programs = (0..4)
            .map(|_| CoreProgram::script([Op::Compute(10), Op::Compute(5)]))
            .collect();
        let mut m = Machine::with_programs(&cfg(4), programs);
        let r = m.run_to_completion();
        assert_eq!(r.insts, 60);
        assert_eq!(r.cores, 4);
    }

    #[test]
    fn determinism_same_seed_same_report() {
        let mk = || {
            let c = cfg(4);
            let profile = rebound_workloads::profile_named("Barnes").unwrap();
            let mut m = Machine::from_profile(&c, &profile, 5_000);
            m.run_to_completion()
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.insts, b.insts);
        assert_eq!(a.msgs.total(), b.msgs.total());
    }

    #[test]
    #[should_panic(expected = "one program per core")]
    fn program_count_must_match() {
        Machine::with_programs(&cfg(2), vec![CoreProgram::script([])]);
    }

    #[test]
    fn proto_error_overflow_is_counted_not_silent() {
        let programs = vec![CoreProgram::script([])];
        let mut m = Machine::with_programs(&cfg(1), programs);
        for _ in 0..70 {
            m.note_proto_error(ProtoError::ResumedDoneCore { core: CoreId(0) });
        }
        assert_eq!(m.proto_errors().len(), 64, "buffer stays bounded");
        assert_eq!(m.proto_errors_dropped(), 6);
        assert!(
            m.proto_error_summary().ends_with("(+6 more dropped)"),
            "summary must surface the truncation: {}",
            m.proto_error_summary()
        );
    }
}
