//! Rollback and recovery (§3.3.5, §4.2): on fault detection, the faulty
//! processor's Interaction Set for Recovery — the transitive closure of its
//! consumers — rolls back to a consistent recovery line of *safe*
//! checkpoints (completed at least L cycles ago, delayed writebacks
//! included). Appendix A's no-domino argument is what makes this line
//! consistent; the property tests exercise it.

use rebound_engine::{CoreId, Cycle};
use rebound_mem::RollbackTargets;

use crate::config::Scheme;

use super::{
    Block, EpisodeState, Machine, RunState, CACHE_INVAL_COST, LOG_RESTORE_COST, LOG_SCAN_COST,
};

impl Machine {
    /// A fault has been *detected* at `core` (§3.2). Roll back the
    /// interaction set for recovery.
    pub(crate) fn handle_fault_detect(&mut self, core: CoreId) {
        let now = self.now;
        let l = self.cfg.detect_latency;
        self.fired_faults
            .push(crate::fault::FiredFault { core, at: now });

        // 1. Pick each processor's rollback target: the latest checkpoint
        //    that fully completed at least L cycles ago (§4.2), falling
        //    back to the boot checkpoint. Under `Rebound_Cluster` the
        //    target is additionally bounded by a snapshot-time ceiling
        //    (see step 2): truncated interaction sets mean a consumer's
        //    checkpoint can postdate its consumption of data the
        //    producer is about to undo, and such a checkpoint must not
        //    anchor the recovery line.
        let cluster_scheme = matches!(self.cfg.scheme, Scheme::Cluster { .. });
        let epoch_scheme = matches!(self.cfg.scheme, Scheme::Epoch { .. });
        let target_of = |m: &Machine, x: CoreId, bound: Cycle, ebound: u64| -> usize {
            let recs = &m.cores[x.index()].records;
            recs.iter()
                .rposition(|r| {
                    let safe = r
                        .complete_at
                        .map(|t| t.saturating_add(l) <= now)
                        .unwrap_or(false);
                    safe && (!cluster_scheme || r.taken_at <= bound)
                        && (!epoch_scheme || r.epoch <= ebound)
                })
                .unwrap_or(0)
        };

        // 2. Build the Interaction Set for Recovery: transitive closure of
        //    MyConsumers over every interval being undone. Under the
        //    Global scheme every processor rolls back.
        //
        //    `Rebound_Cluster` refinement: plain Rebound's checkpoint
        //    episodes include producers transitively, so a consumer's
        //    latest safe checkpoint never embeds data its producer can
        //    still undo — the paper's no-domino argument. Cluster
        //    truncation removes that coverage, so when producer `x`
        //    (target snapshot at time S) pulls a consumer in, the
        //    consumer's own target is bounded to snapshots taken at or
        //    before S: any consumption of x's undone data happened
        //    strictly after S, so a ≤ S snapshot predates it. Bounds
        //    tighten monotonically to a fixpoint — the cross-cluster
        //    cascade this scheme trades for its cheap collection.
        //    `Rebound_Epoch` refinement (same shape, different clock): a
        //    record tagged `e` holds influence only of data stamped
        //    strictly below `e` (the pre-consumption probe adopts and
        //    snapshots *before* consuming), so when producer `x` rolls to
        //    a record tagged `e_x`, the data it undoes carries stamps
        //    ≥ `e_x` and a pulled consumer is safe at any record tagged
        //    ≤ `e_x` (equality included). Epoch ceilings tighten to a
        //    fixpoint exactly like the cluster scheme's cycle ceilings.
        let mut irec = vec![false; self.cores.len()];
        let mut bound = vec![Cycle::MAX; self.cores.len()];
        let mut ebound = vec![u64::MAX; self.cores.len()];
        let mut order: Vec<CoreId> = Vec::new();
        if matches!(self.cfg.scheme, Scheme::Global { .. }) || !self.cfg.scheme.checkpoints() {
            for (i, flag) in irec.iter_mut().enumerate() {
                *flag = true;
                order.push(CoreId(i));
            }
        } else {
            let mut work = vec![core];
            irec[core.index()] = true;
            order.push(core);
            while let Some(x) = work.pop() {
                let t = target_of(self, x, bound[x.index()], ebound[x.index()]);
                let snap = self.cores[x.index()].records[t].taken_at;
                let etag = self.cores[x.index()].records[t].epoch;
                let from_interval = self.cores[x.index()].records[t].stub_seq;
                let consumer_bits = self.cores[x.index()].dep.consumers_since(from_interval);
                // Expand dep bits to cores and pull in the checkpoint
                // unit (the §8 extension and Rebound_Cluster both roll
                // whole clusters back together).
                let consumer_cores = self.expand_dep_bits(consumer_bits);
                let members = consumer_cores.union(self.ckpt_unit(x));
                for cns in members.iter() {
                    // True consumers inherit the producer's target
                    // snapshot time as their ceiling; unit-mates (rolling
                    // in sympathy, their episodes shared with `x`) keep
                    // x's own ceiling.
                    let (b, eb) = if consumer_cores.contains(cns) {
                        (snap, etag)
                    } else {
                        (bound[x.index()], ebound[x.index()])
                    };
                    if !irec[cns.index()] {
                        irec[cns.index()] = true;
                        order.push(cns);
                        if cluster_scheme {
                            bound[cns.index()] = b;
                        }
                        if epoch_scheme {
                            ebound[cns.index()] = eb;
                        }
                        work.push(cns);
                    } else if (cluster_scheme && b < bound[cns.index()])
                        || (epoch_scheme && eb < ebound[cns.index()])
                    {
                        // Already a member, but a tighter ceiling may
                        // deepen its target: re-process. Ceilings only
                        // ever shrink over a finite snapshot set, so
                        // the fixpoint terminates.
                        if cluster_scheme {
                            bound[cns.index()] = bound[cns.index()].min(b);
                        }
                        if epoch_scheme {
                            ebound[cns.index()] = ebound[cns.index()].min(eb);
                        }
                        work.push(cns);
                    }
                }
            }
        }

        // 3. Abort every checkpoint episode touching the recovery set ("a
        //    fault detected in a processor while checkpointing aborts the
        //    whole checkpoint", §3.3.4); members outside the recovery set
        //    complete their local checkpoints immediately — their data has
        //    no dependence on the faulty processor.
        self.abort_episodes_for(&irec);

        // 4. Per-member rollback: caches, directory presence, Dep
        //    registers, sync-state fixups, architectural state.
        let mut targets = RollbackTargets::new(self.cores.len());
        for &m in &order {
            let t = target_of(self, m, bound[m.index()], ebound[m.index()]);
            let stub = self.cores[m.index()].records[t].stub_seq;
            targets.set(m, stub);
            self.rollback_core_state(m, t);
        }

        // 5. Undo the log and restore memory (reverse order per bank).
        let outcome = self.log.rollback(&targets);
        for r in &outcome.restores {
            self.memory.write(r.id, r.old);
        }

        // 6. Recovery latency: invalidation + banked log scan + restores +
        //    the recovery protocol's messaging.
        let banks = self.log.banks() as u64;
        let proto = 2 * self.net.config().remote_one_way * (order.len() as u64).max(1);
        let recovery = CACHE_INVAL_COST
            + proto
            + (outcome.scanned * LOG_SCAN_COST) / banks
            + (outcome.restores.len() as u64 * LOG_RESTORE_COST) / banks;

        self.metrics.rollbacks += 1;
        self.metrics.irec_sizes.push(order.len() as f64);
        self.metrics.recovery_cycles.push(recovery as f64);

        // 7. Resume every member once restoration completes. The window
        //    until then is observable (FaultPhase::RollbackOfOther aims
        //    a second fault inside it).
        let resume_at = now + recovery;
        self.rollback_cores = order.iter().copied().collect();
        self.rollback_until = resume_at;
        for &m in &order {
            let c = &mut self.cores[m.index()];
            // A member restored *at the barrier* stays parked; the
            // release wakes it like any other waiter.
            if matches!(c.run, RunState::Blocked(Block::BarrierFlag { .. })) {
                c.busy_until = resume_at;
                continue;
            }
            c.run = RunState::Ready;
            c.busy_until = resume_at;
            self.schedule_step(m, resume_at);
        }
        self.fixup_locks_after(&irec);

        // Restoration may have re-registered the episode's *gated last
        // arrival* as a plain waiter (its at-barrier snapshot predates
        // the gating): every core is then parked with nobody left to
        // arrive, and the only release trigger — a fresh arrival
        // completing the count — can never fire. Synthesize the release
        // the dead episode withheld.
        if self.barrier.last_arrival.is_none()
            && !self.barrier.release_gated
            && self.barrier.arrived == self.cores.len()
            && self.barrier.waiters.len() == self.cores.len()
        {
            self.barrier.last_arrival = self.barrier.waiters.pop();
            self.release_barrier(0);
        }
    }

    /// Aborts checkpoint episodes that include any rolling-back processor.
    fn abort_episodes_for(&mut self, irec: &[bool]) {
        // Which local-episode initiators are affected?
        let mut dead_initiators: Vec<(CoreId, u64)> = Vec::new();
        for (i, c) in self.cores.iter().enumerate() {
            if !irec[i] {
                continue;
            }
            match &c.role {
                EpisodeState::Initiating(st) => dead_initiators.push((c.id, st.epoch)),
                EpisodeState::Accepted { initiator, epoch }
                | EpisodeState::Member { initiator, epoch } => {
                    dead_initiators.push((*initiator, *epoch))
                }
                _ => {}
            }
        }
        dead_initiators.sort();
        dead_initiators.dedup();

        for (i, &rolling) in irec.iter().enumerate() {
            if rolling {
                continue; // full reset below
            }
            let id = CoreId(i);
            let role = self.cores[i].role.clone();
            let in_dead_local = match &role {
                EpisodeState::Initiating(st) => dead_initiators.contains(&(id, st.epoch)),
                EpisodeState::Accepted { initiator, epoch }
                | EpisodeState::Member { initiator, epoch } => {
                    dead_initiators.contains(&(*initiator, *epoch))
                }
                EpisodeState::GlobalMember { .. } => {
                    // Global episodes only abort if some member rolls back,
                    // which under the Global scheme means everyone; a
                    // Rebound machine never has GlobalMembers.
                    false
                }
                EpisodeState::BarMember { .. } => self.barrier.barck_active,
                // An epoch snapshot has no coordination peers: another
                // core's rollback never aborts it (its local record is
                // sound and completes on its own drain).
                EpisodeState::EpochSnap { .. } => false,
                EpisodeState::Idle => false,
            };
            if !in_dead_local {
                continue;
            }
            // Survivor of an aborted episode: its own checkpointed data is
            // sound — complete the local checkpoint immediately.
            match role {
                EpisodeState::Accepted { .. } => {
                    self.cores[i].role = EpisodeState::Idle;
                    self.maybe_join_pending_barck(id);
                }
                _ => self.fast_complete_member(id),
            }
        }

        // An active Global episode dies when any member rolls back (under
        // the Global scheme that is every processor); the machine-level
        // coordination state must not wait for WbDones that cannot come.
        if self.global.active {
            let any = self
                .cores
                .iter()
                .enumerate()
                .any(|(i, c)| irec[i] && matches!(c.role, EpisodeState::GlobalMember { .. }))
                || self
                    .global
                    .coordinator
                    .map(|c| irec[c.index()])
                    .unwrap_or(false);
            if any {
                self.global.active = false;
                self.global.coordinator = None;
                self.global.wb_done.clear();
            }
        }

        // A barrier-opt episode with any rolled-back member dies entirely.
        if self.barrier.barck_active {
            let any = self.cores.iter().enumerate().any(|(i, c)| {
                irec[i]
                    && (matches!(c.role, EpisodeState::BarMember { .. })
                        || c.barck_pending
                        || c.barck_arrived)
            });
            if any {
                self.barrier.barck_active = false;
                self.barrier.barck_initiator = None;
                self.barrier.barck_done.clear();
                for c in self.cores.iter_mut() {
                    c.barck_pending = false;
                    c.barck_notified = false;
                }
                if self.barrier.release_gated {
                    if let Some(last) = self.barrier.last_arrival {
                        if !irec[last.index()] {
                            self.release_barrier(0);
                        } else {
                            self.barrier.release_gated = false;
                        }
                    }
                }
            }
        }
    }

    /// Synchronously finishes a non-rolled-back member's checkpoint after
    /// its episode was aborted.
    fn fast_complete_member(&mut self, core: CoreId) {
        let idx = core.index();
        if self.cores[idx].drain.active {
            // Flush the remaining Delayed lines immediately.
            let pending: Vec<_> = self.cores[idx].drain.queue.drain(..).collect();
            for line in pending {
                self.flush_delayed_line(core, line);
            }
            self.cores[idx].drain.active = false;
            self.cores[idx].drain.gen += 1;
        }
        let unfinished = self.cores[idx]
            .records
            .last()
            .map(|r| r.complete_at.is_none())
            .unwrap_or(false);
        if unfinished {
            let stub_seq = self.cores[idx].records.last().expect("record").stub_seq;
            self.log.append_stub(core, stub_seq);
            self.cores[idx]
                .records
                .last_mut()
                .expect("record")
                .complete_at = Some(self.now);
            self.cores[idx].dep.complete(stub_seq - 1, self.now);
            self.metrics.processor_checkpoints += 1;
        }
        self.cores[idx].role = EpisodeState::Idle;
        self.cores[idx].pending_wb = None;
        self.cores[idx].exec_gate = false;
        // Unconditional: the core may have gone Ready while gated (e.g. a
        // lock grant during the writeback stall) and needs rescheduling.
        self.unblock_ckpt(core);
        self.maybe_join_pending_barck(core);
    }

    /// Resets one rolling-back core to its target record.
    fn rollback_core_state(&mut self, core: CoreId, target_idx: usize) {
        let idx = core.index();

        // Cancel in-flight activity.
        let now = self.now;
        {
            let c = &mut self.cores[idx];
            c.drain.active = false;
            c.drain.queue.clear();
            c.drain.gen += 1;
            c.role = EpisodeState::Idle;
            c.exec_gate = false;
            // Flush the elapsed blocked interval into its stall category
            // before the slot is cleared: dropping it mid-stall loses the
            // cycles from the breakdown (total would no longer equal the
            // sum of per-kind cycles).
            if let Some((since, k)) = c.block_since.take() {
                c.stall.add(k, now.saturating_since(since));
            }
            c.pending_wb = None;
            c.force_ckpt = false;
            c.barck_pending = false;
            c.barck_arrived = false;
            c.barck_wb_done = false;
            c.barck_notified = false;
            c.retry_gen += 1;
            c.step_gen += 1;
        }

        // Barrier fixups: a rolled-back arrival will re-arrive.
        if self.cores[idx].at_barrier {
            self.cores[idx].at_barrier = false;
            self.barrier.arrived = self.barrier.arrived.saturating_sub(1);
            self.barrier.waiters.retain(|&w| w != core);
            if self.barrier.last_arrival == Some(core) {
                self.barrier.last_arrival = None;
                self.barrier.release_gated = false;
            }
        }

        // Caches: invalidate everything (§3.3.5 step (ii)); dirty data of
        // the undone intervals dies here, the log restores memory.
        {
            let c = &mut self.cores[idx];
            c.l1.invalidate_all(|_, _| {});
            c.l2.invalidate_all(|_, _| {});
        }
        self.dir.purge_core(core);
        self.dir.clear_lwid_of(core);

        // Dep registers (§3.3.5 step (i)) and architectural state.
        let rec = self.cores[idx].records[target_idx].clone();
        {
            let c = &mut self.cores[idx];
            c.records.truncate(target_idx + 1);
            c.dep.reset_all(rec.stub_seq);
            c.program = rec.program.clone();
            c.insts = rec.insts;
            c.store_seq = rec.store_seq;
            c.barrier_passes = rec.barrier_passes;
            // The record captures any op stashed for re-issue at snapshot
            // time (it had been consumed from the program stream but not
            // executed); dropping it would skip the op on re-execution.
            c.resume_op = rec.resume_op;
            c.epoch = rec.epoch;
            c.interval_start_insts = rec.insts;
            c.next_ckpt_due = rec.insts + self.cfg.ckpt_interval_insts;
            c.last_ckpt_cycle = self.now;
            if c.run == RunState::Done {
                c.ended_at = None;
                self.done_cores -= 1;
            }
            c.run = RunState::Blocked(Block::Rollback);
        }

        // The snapshot was taken while the core was parked at the
        // barrier: its restored program counter is already past the
        // arrival, so the arrival itself must be reconstructed. If that
        // barrier episode is still the pending one, re-register the core
        // as a waiter (the release will wake it); if the episode
        // released since the snapshot, consume the release and let the
        // core resume past the barrier.
        if rec.at_barrier {
            if rec.barrier_passes == self.barrier.generation {
                let gen = self.barrier.generation;
                let c = &mut self.cores[idx];
                c.at_barrier = true;
                c.run = RunState::Blocked(Block::BarrierFlag { gen });
                self.barrier.arrived += 1;
                self.barrier.waiters.push(core);
            } else {
                self.cores[idx].barrier_passes += 1;
            }
        }
    }

    /// Releases locks held (or queued for) by rolled-back cores and grants
    /// them to surviving waiters.
    fn fixup_locks_after(&mut self, irec: &[bool]) {
        use rebound_workloads::AddressLayout;
        let layout = AddressLayout;
        for id in 0..self.locks.len() {
            self.locks[id].queue.retain(|w| !irec[w.index()]);
            let holder = self.locks[id].holder;
            if let Some(h) = holder {
                if irec[h.index()] {
                    self.locks[id].holder = None;
                    if let Some(next) = self.locks[id].queue.pop_front() {
                        self.locks[id].holder = Some(next);
                        let grant = self.access(next, layout.lock_line(id as u32), true, true);
                        self.cores[next.index()].insts += 1;
                        self.resume_core(next, grant.max(1));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;
    use crate::program::CoreProgram;
    use rebound_engine::{Addr, Cycle};
    use rebound_workloads::Op;

    fn rebound_cfg(n: usize) -> MachineConfig {
        let mut c = MachineConfig::small(n);
        c.scheme = Scheme::REBOUND;
        c.detect_latency = 500;
        c
    }

    /// A fault with no checkpoints rolls a solo core back to boot and
    /// restores memory exactly.
    #[test]
    fn solo_rollback_to_boot_restores_memory() {
        let a = Addr(0x40);
        let program = CoreProgram::script([
            Op::Store(a),
            Op::Compute(200_000), // long enough to evict nothing; fault lands here
            Op::Store(a),
            Op::End,
        ]);
        let mut cfg = rebound_cfg(1);
        cfg.ckpt_interval_insts = 1_000_000; // never checkpoint
        let mut m = Machine::with_programs(&cfg, vec![program]);
        m.schedule_fault_detection(CoreId(0), Cycle(10_000));
        let r = m.run_to_completion();
        assert_eq!(r.rollbacks, 1);
        // The store re-executed after rollback; its dirty line sits in L2
        // again. Memory must hold the boot value (0) for the line because
        // no writeback ever committed.
        assert_eq!(m.committed_line_value(a.line(Default::default())), 0);
        // The program completed (re-execution after recovery).
        assert!(m.is_finished());
        assert!(r.metrics.irec_sizes.mean() >= 1.0);
    }

    /// `Rebound_Cluster` recovery-line consistency: a cross-cluster
    /// consumer whose checkpoint *postdates* its consumption of data the
    /// producer is about to undo must roll back past that checkpoint.
    /// Plain Rebound never faces this (episodes include producers, so a
    /// consumer checkpoint is always covered); the cluster truncation
    /// reintroduces it, and the snapshot-time bound in
    /// `handle_fault_detect` is what keeps the line consistent.
    #[test]
    fn cluster_consumer_rolls_past_checkpoint_taken_after_consumption() {
        let x = Addr(0x80_0000);
        let programs: Vec<CoreProgram> = (0..8)
            .map(|i| match i {
                // Producer (cluster A): stores X, never checkpoints.
                0 => CoreProgram::script([Op::Store(x), Op::Compute(60_000)]),
                // Consumer (cluster B): reads X, then its cluster
                // checkpoints — a snapshot that embeds the consumption.
                5 => CoreProgram::script([
                    Op::Compute(3_000),
                    Op::Load(x),
                    Op::CheckpointHint,
                    Op::Compute(60_000),
                ]),
                _ => CoreProgram::script([Op::Compute(60_000)]),
            })
            .collect();
        let mut cfg = MachineConfig::small(8);
        cfg.scheme = Scheme::REBOUND_CLUSTER;
        cfg.ckpt_interval_insts = 1_000_000; // only the hinted episode
        cfg.detect_latency = 200; // cluster B's checkpoint is safe early
        let mut m = Machine::with_programs(&cfg, programs);
        m.schedule_fault_detection(CoreId(0), Cycle(20_000));
        m.run_until(Cycle(20_001));

        // Cluster B checkpointed once (records = boot + episode) before
        // the fault; by detection time that checkpoint is "safe" in the
        // §4.2 sense — but it embeds P5's read of P0's undone store, so
        // the bounded closure must have discarded it: every cluster-B
        // core is back at boot with zero retired work.
        for c in 4..8 {
            assert_eq!(
                m.cores[c].records.len(),
                1,
                "P{c} must roll past its post-consumption checkpoint"
            );
            assert_eq!(m.cores[c].insts, 0, "P{c} restarts from boot");
        }
        assert!(
            (m.metrics.irec_sizes.mean() - 8.0).abs() < 1e-9,
            "both clusters roll back"
        );

        // Recovery still converges on the fault-free state.
        let r = m.run_to_completion();
        assert!(r.rollbacks >= 1);
        let mut clean = Machine::with_programs(
            &cfg,
            (0..8)
                .map(|i| match i {
                    0 => CoreProgram::script([Op::Store(x), Op::Compute(60_000)]),
                    5 => CoreProgram::script([
                        Op::Compute(3_000),
                        Op::Load(x),
                        Op::CheckpointHint,
                        Op::Compute(60_000),
                    ]),
                    _ => CoreProgram::script([Op::Compute(60_000)]),
                })
                .collect(),
        );
        clean.run_to_completion();
        let line = x.line(Default::default());
        assert_eq!(
            m.effective_line_value(line),
            clean.effective_line_value(line)
        );
    }

    /// `Rebound_Epoch` recovery-line consistency — the epoch analogue of
    /// the cluster test above. The consumer snapshots *on observation*
    /// (tagged with the adopted epoch, before the data is consumed) and
    /// again afterwards; when the producer rolls back to its record
    /// tagged `e`, the consumer must discard every record tagged > `e`
    /// and land on the pre-consumption snapshot.
    #[test]
    fn epoch_consumer_rolls_to_pre_consumption_snapshot() {
        let x = Addr(0x80_0000);
        let progs = |_: ()| -> Vec<CoreProgram> {
            (0..8)
                .map(|i| match i {
                    // Producer: bump to epoch 1 (hinted snapshot), then
                    // store X — stamped 1 — and compute on.
                    0 => {
                        CoreProgram::script([Op::CheckpointHint, Op::Store(x), Op::Compute(60_000)])
                    }
                    // Consumer: the load probes X (stamp 1 > epoch 0),
                    // adopts epoch 1 and snapshots *before* consuming;
                    // the hinted snapshot after it is tagged 2 and embeds
                    // the consumption.
                    5 => CoreProgram::script([
                        Op::Compute(3_000),
                        Op::Load(x),
                        Op::CheckpointHint,
                        Op::Compute(60_000),
                    ]),
                    _ => CoreProgram::script([Op::Compute(60_000)]),
                })
                .collect()
        };
        let mut cfg = MachineConfig::small(8);
        cfg.scheme = Scheme::REBOUND_EPOCH;
        cfg.ckpt_interval_insts = 1_000_000; // only hinted/forced snapshots
        cfg.detect_latency = 200;
        let mut m = Machine::with_programs(&cfg, progs(()));
        m.schedule_fault_detection(CoreId(0), Cycle(20_000));
        m.run_until(Cycle(20_001));

        // The producer rolled to its epoch-1 record (boot + hinted).
        assert_eq!(m.cores[0].records.len(), 2);
        assert_eq!(m.cores[0].records.last().unwrap().epoch, 1);
        // The consumer discarded the tag-2 record (it embeds the undone
        // store) and sits on the observation snapshot: tagged 1, taken
        // with the load still stashed for re-issue.
        assert_eq!(
            m.cores[5].records.len(),
            2,
            "P5 must roll past its post-consumption snapshot"
        );
        let rec = m.cores[5].records.last().unwrap();
        assert_eq!(rec.epoch, 1);
        assert_eq!(rec.resume_op, Some(Op::Load(x)));
        assert_eq!(m.cores[5].insts, 3_000, "the load itself is un-retired");
        assert_eq!(m.core_epoch(CoreId(5)), 1);

        // Recovery still converges on the fault-free state.
        let r = m.run_to_completion();
        assert!(r.rollbacks >= 1);
        let mut clean = Machine::with_programs(&cfg, progs(()));
        clean.run_to_completion();
        let line = x.line(Default::default());
        assert_eq!(
            m.effective_line_value(line),
            clean.effective_line_value(line)
        );
    }

    /// Satellite-bugfix regression: a core blocked mid-stall that is
    /// re-blocked, re-tagged and finally swept up by a rollback must have
    /// every elapsed interval attributed to exactly one category — the
    /// rollback path used to clear `block_since` without flushing it,
    /// silently dropping the open interval from the breakdown.
    #[test]
    fn multi_phase_stall_cycles_are_fully_attributed() {
        use crate::metrics::OverheadKind;
        let cfg = rebound_cfg(1);
        let mut m =
            Machine::with_programs(&cfg, vec![CoreProgram::script([Op::Compute(10), Op::End])]);
        let c0 = CoreId(0);
        m.now = Cycle(1_000);
        m.block_ckpt(c0, OverheadKind::Sync);
        m.now = Cycle(1_300);
        m.retag_block(c0, OverheadKind::WbDelay); // flushes 300 → Sync
        m.now = Cycle(1_450);
        m.block_ckpt(c0, OverheadKind::Sync); // re-block mid-stall: 150 → WbDelay
        m.now = Cycle(2_000);
        m.rollback_core_state(c0, 0); // must flush the open 550 → Sync
        let s = &m.cores[0].stall;
        assert_eq!(s.sync_delay, 300 + 550);
        assert_eq!(s.wb_delay, 150);
        assert_eq!(
            s.total(),
            1_000,
            "every blocked cycle lands in exactly one category"
        );
        assert!(m.cores[0].block_since.is_none());
    }
}
