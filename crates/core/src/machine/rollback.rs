//! Rollback and recovery (§3.3.5, §4.2): on fault detection, the faulty
//! processor's Interaction Set for Recovery — the transitive closure of its
//! consumers — rolls back to a consistent recovery line of *safe*
//! checkpoints (completed at least L cycles ago, delayed writebacks
//! included). Appendix A's no-domino argument is what makes this line
//! consistent; the property tests exercise it.

use rebound_engine::CoreId;
use rebound_mem::RollbackTargets;

use crate::config::Scheme;

use super::{
    Block, CkptRole, Machine, RunState, CACHE_INVAL_COST, LOG_RESTORE_COST, LOG_SCAN_COST,
};

impl Machine {
    /// A fault has been *detected* at `core` (§3.2). Roll back the
    /// interaction set for recovery.
    pub(crate) fn handle_fault_detect(&mut self, core: CoreId) {
        let now = self.now;
        let l = self.cfg.detect_latency;
        self.fired_faults
            .push(crate::fault::FiredFault { core, at: now });

        // 1. Pick each processor's rollback target: the latest checkpoint
        //    that fully completed at least L cycles ago (§4.2), falling
        //    back to the boot checkpoint.
        let target_of = |m: &Machine, x: CoreId| -> usize {
            let recs = &m.cores[x.index()].records;
            recs.iter()
                .rposition(|r| {
                    r.complete_at
                        .map(|t| t.saturating_add(l) <= now)
                        .unwrap_or(false)
                })
                .unwrap_or(0)
        };

        // 2. Build the Interaction Set for Recovery: transitive closure of
        //    MyConsumers over every interval being undone. Under the
        //    Global scheme every processor rolls back.
        let mut irec = vec![false; self.cores.len()];
        let mut order: Vec<CoreId> = Vec::new();
        if matches!(self.cfg.scheme, Scheme::Global { .. }) || !self.cfg.scheme.checkpoints() {
            for (i, flag) in irec.iter_mut().enumerate() {
                *flag = true;
                order.push(CoreId(i));
            }
        } else {
            let mut work = vec![core];
            irec[core.index()] = true;
            order.push(core);
            while let Some(x) = work.pop() {
                let t = target_of(self, x);
                let from_interval = self.cores[x.index()].records[t].stub_seq;
                let consumer_bits = self.cores[x.index()].dep.consumers_since(from_interval);
                // Expand dep bits to cores and pull in cluster-mates (the
                // §8 extension rolls whole clusters back together).
                let consumers = self
                    .expand_dep_bits(consumer_bits)
                    .union(self.cluster_mates(x));
                for cns in consumers.iter() {
                    if !irec[cns.index()] {
                        irec[cns.index()] = true;
                        order.push(cns);
                        work.push(cns);
                    }
                }
            }
        }

        // 3. Abort every checkpoint episode touching the recovery set ("a
        //    fault detected in a processor while checkpointing aborts the
        //    whole checkpoint", §3.3.4); members outside the recovery set
        //    complete their local checkpoints immediately — their data has
        //    no dependence on the faulty processor.
        self.abort_episodes_for(&irec);

        // 4. Per-member rollback: caches, directory presence, Dep
        //    registers, sync-state fixups, architectural state.
        let mut targets = RollbackTargets::new(self.cores.len());
        for &m in &order {
            let t = target_of(self, m);
            let stub = self.cores[m.index()].records[t].stub_seq;
            targets.set(m, stub);
            self.rollback_core_state(m, t);
        }

        // 5. Undo the log and restore memory (reverse order per bank).
        let outcome = self.log.rollback(&targets);
        for r in &outcome.restores {
            self.memory.write(r.id, r.old);
        }

        // 6. Recovery latency: invalidation + banked log scan + restores +
        //    the recovery protocol's messaging.
        let banks = self.log.banks() as u64;
        let proto = 2 * self.net.config().remote_one_way * (order.len() as u64).max(1);
        let recovery = CACHE_INVAL_COST
            + proto
            + (outcome.scanned * LOG_SCAN_COST) / banks
            + (outcome.restores.len() as u64 * LOG_RESTORE_COST) / banks;

        self.metrics.rollbacks += 1;
        self.metrics.irec_sizes.push(order.len() as f64);
        self.metrics.recovery_cycles.push(recovery as f64);

        // 7. Resume every member once restoration completes. The window
        //    until then is observable (FaultPhase::RollbackOfOther aims
        //    a second fault inside it).
        let resume_at = now + recovery;
        self.rollback_cores = order.iter().copied().collect();
        self.rollback_until = resume_at;
        for &m in &order {
            let c = &mut self.cores[m.index()];
            // A member restored *at the barrier* stays parked; the
            // release wakes it like any other waiter.
            if matches!(c.run, RunState::Blocked(Block::BarrierFlag { .. })) {
                c.busy_until = resume_at;
                continue;
            }
            c.run = RunState::Ready;
            c.busy_until = resume_at;
            self.schedule_step(m, resume_at);
        }
        self.fixup_locks_after(&irec);

        // Restoration may have re-registered the episode's *gated last
        // arrival* as a plain waiter (its at-barrier snapshot predates
        // the gating): every core is then parked with nobody left to
        // arrive, and the only release trigger — a fresh arrival
        // completing the count — can never fire. Synthesize the release
        // the dead episode withheld.
        if self.barrier.last_arrival.is_none()
            && !self.barrier.release_gated
            && self.barrier.arrived == self.cores.len()
            && self.barrier.waiters.len() == self.cores.len()
        {
            self.barrier.last_arrival = self.barrier.waiters.pop();
            self.release_barrier(0);
        }
    }

    /// Aborts checkpoint episodes that include any rolling-back processor.
    fn abort_episodes_for(&mut self, irec: &[bool]) {
        // Which local-episode initiators are affected?
        let mut dead_initiators: Vec<(CoreId, u64)> = Vec::new();
        for (i, c) in self.cores.iter().enumerate() {
            if !irec[i] {
                continue;
            }
            match &c.role {
                CkptRole::Initiating(st) => dead_initiators.push((c.id, st.epoch)),
                CkptRole::Accepted { initiator, epoch } | CkptRole::Member { initiator, epoch } => {
                    dead_initiators.push((*initiator, *epoch))
                }
                _ => {}
            }
        }
        dead_initiators.sort();
        dead_initiators.dedup();

        for (i, &rolling) in irec.iter().enumerate() {
            if rolling {
                continue; // full reset below
            }
            let id = CoreId(i);
            let role = self.cores[i].role.clone();
            let in_dead_local = match &role {
                CkptRole::Initiating(st) => dead_initiators.contains(&(id, st.epoch)),
                CkptRole::Accepted { initiator, epoch } | CkptRole::Member { initiator, epoch } => {
                    dead_initiators.contains(&(*initiator, *epoch))
                }
                CkptRole::GlobalMember { .. } => {
                    // Global episodes only abort if some member rolls back,
                    // which under the Global scheme means everyone; a
                    // Rebound machine never has GlobalMembers.
                    false
                }
                CkptRole::BarMember { .. } => self.barrier.barck_active,
                CkptRole::Idle => false,
            };
            if !in_dead_local {
                continue;
            }
            // Survivor of an aborted episode: its own checkpointed data is
            // sound — complete the local checkpoint immediately.
            match role {
                CkptRole::Accepted { .. } => {
                    self.cores[i].role = CkptRole::Idle;
                    self.maybe_join_pending_barck(id);
                }
                _ => self.fast_complete_member(id),
            }
        }

        // An active Global episode dies when any member rolls back (under
        // the Global scheme that is every processor); the machine-level
        // coordination state must not wait for WbDones that cannot come.
        if self.global.active {
            let any = self
                .cores
                .iter()
                .enumerate()
                .any(|(i, c)| irec[i] && matches!(c.role, CkptRole::GlobalMember { .. }))
                || self
                    .global
                    .coordinator
                    .map(|c| irec[c.index()])
                    .unwrap_or(false);
            if any {
                self.global.active = false;
                self.global.coordinator = None;
                self.global.wb_done.clear();
            }
        }

        // A barrier-opt episode with any rolled-back member dies entirely.
        if self.barrier.barck_active {
            let any = self.cores.iter().enumerate().any(|(i, c)| {
                irec[i]
                    && (matches!(c.role, CkptRole::BarMember { .. })
                        || c.barck_pending
                        || c.barck_arrived)
            });
            if any {
                self.barrier.barck_active = false;
                self.barrier.barck_initiator = None;
                self.barrier.barck_done.clear();
                for c in self.cores.iter_mut() {
                    c.barck_pending = false;
                    c.barck_notified = false;
                }
                if self.barrier.release_gated {
                    if let Some(last) = self.barrier.last_arrival {
                        if !irec[last.index()] {
                            self.release_barrier(0);
                        } else {
                            self.barrier.release_gated = false;
                        }
                    }
                }
            }
        }
    }

    /// Synchronously finishes a non-rolled-back member's checkpoint after
    /// its episode was aborted.
    fn fast_complete_member(&mut self, core: CoreId) {
        let idx = core.index();
        if self.cores[idx].drain.active {
            // Flush the remaining Delayed lines immediately.
            let pending: Vec<_> = self.cores[idx].drain.queue.drain(..).collect();
            for line in pending {
                self.flush_delayed_line(core, line);
            }
            self.cores[idx].drain.active = false;
            self.cores[idx].drain.gen += 1;
        }
        let unfinished = self.cores[idx]
            .records
            .last()
            .map(|r| r.complete_at.is_none())
            .unwrap_or(false);
        if unfinished {
            let stub_seq = self.cores[idx].records.last().expect("record").stub_seq;
            self.log.append_stub(core, stub_seq);
            self.cores[idx]
                .records
                .last_mut()
                .expect("record")
                .complete_at = Some(self.now);
            self.cores[idx].dep.complete(stub_seq - 1, self.now);
            self.metrics.processor_checkpoints += 1;
        }
        self.cores[idx].role = CkptRole::Idle;
        self.cores[idx].pending_wb = None;
        self.cores[idx].exec_gate = false;
        // Unconditional: the core may have gone Ready while gated (e.g. a
        // lock grant during the writeback stall) and needs rescheduling.
        self.unblock_ckpt(core);
        self.maybe_join_pending_barck(core);
    }

    /// Resets one rolling-back core to its target record.
    fn rollback_core_state(&mut self, core: CoreId, target_idx: usize) {
        let idx = core.index();

        // Cancel in-flight activity.
        {
            let c = &mut self.cores[idx];
            c.drain.active = false;
            c.drain.queue.clear();
            c.drain.gen += 1;
            c.role = CkptRole::Idle;
            c.exec_gate = false;
            c.block_since = None;
            c.pending_wb = None;
            c.resume_op = None;
            c.force_ckpt = false;
            c.barck_pending = false;
            c.barck_arrived = false;
            c.barck_wb_done = false;
            c.barck_notified = false;
            c.retry_gen += 1;
            c.step_gen += 1;
        }

        // Barrier fixups: a rolled-back arrival will re-arrive.
        if self.cores[idx].at_barrier {
            self.cores[idx].at_barrier = false;
            self.barrier.arrived = self.barrier.arrived.saturating_sub(1);
            self.barrier.waiters.retain(|&w| w != core);
            if self.barrier.last_arrival == Some(core) {
                self.barrier.last_arrival = None;
                self.barrier.release_gated = false;
            }
        }

        // Caches: invalidate everything (§3.3.5 step (ii)); dirty data of
        // the undone intervals dies here, the log restores memory.
        {
            let c = &mut self.cores[idx];
            c.l1.invalidate_all(|_, _| {});
            c.l2.invalidate_all(|_, _| {});
        }
        self.dir.purge_core(core);
        self.dir.clear_lwid_of(core);

        // Dep registers (§3.3.5 step (i)) and architectural state.
        let rec = self.cores[idx].records[target_idx].clone();
        {
            let c = &mut self.cores[idx];
            c.records.truncate(target_idx + 1);
            c.dep.reset_all(rec.stub_seq);
            c.program = rec.program.clone();
            c.insts = rec.insts;
            c.store_seq = rec.store_seq;
            c.barrier_passes = rec.barrier_passes;
            c.interval_start_insts = rec.insts;
            c.next_ckpt_due = rec.insts + self.cfg.ckpt_interval_insts;
            c.last_ckpt_cycle = self.now;
            if c.run == RunState::Done {
                c.ended_at = None;
                self.done_cores -= 1;
            }
            c.run = RunState::Blocked(Block::Rollback);
        }

        // The snapshot was taken while the core was parked at the
        // barrier: its restored program counter is already past the
        // arrival, so the arrival itself must be reconstructed. If that
        // barrier episode is still the pending one, re-register the core
        // as a waiter (the release will wake it); if the episode
        // released since the snapshot, consume the release and let the
        // core resume past the barrier.
        if rec.at_barrier {
            if rec.barrier_passes == self.barrier.generation {
                let gen = self.barrier.generation;
                let c = &mut self.cores[idx];
                c.at_barrier = true;
                c.run = RunState::Blocked(Block::BarrierFlag { gen });
                self.barrier.arrived += 1;
                self.barrier.waiters.push(core);
            } else {
                self.cores[idx].barrier_passes += 1;
            }
        }
    }

    /// Releases locks held (or queued for) by rolled-back cores and grants
    /// them to surviving waiters.
    fn fixup_locks_after(&mut self, irec: &[bool]) {
        use rebound_workloads::AddressLayout;
        let layout = AddressLayout;
        for id in 0..self.locks.len() {
            self.locks[id].queue.retain(|w| !irec[w.index()]);
            let holder = self.locks[id].holder;
            if let Some(h) = holder {
                if irec[h.index()] {
                    self.locks[id].holder = None;
                    if let Some(next) = self.locks[id].queue.pop_front() {
                        self.locks[id].holder = Some(next);
                        let grant = self.access(next, layout.lock_line(id as u32), true, true);
                        self.cores[next.index()].insts += 1;
                        self.resume_core(next, grant.max(1));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;
    use crate::program::CoreProgram;
    use rebound_engine::{Addr, Cycle};
    use rebound_workloads::Op;

    fn rebound_cfg(n: usize) -> MachineConfig {
        let mut c = MachineConfig::small(n);
        c.scheme = Scheme::REBOUND;
        c.detect_latency = 500;
        c
    }

    /// A fault with no checkpoints rolls a solo core back to boot and
    /// restores memory exactly.
    #[test]
    fn solo_rollback_to_boot_restores_memory() {
        let a = Addr(0x40);
        let program = CoreProgram::script([
            Op::Store(a),
            Op::Compute(200_000), // long enough to evict nothing; fault lands here
            Op::Store(a),
            Op::End,
        ]);
        let mut cfg = rebound_cfg(1);
        cfg.ckpt_interval_insts = 1_000_000; // never checkpoint
        let mut m = Machine::with_programs(&cfg, vec![program]);
        m.schedule_fault_detection(CoreId(0), Cycle(10_000));
        let r = m.run_to_completion();
        assert_eq!(r.rollbacks, 1);
        // The store re-executed after rollback; its dirty line sits in L2
        // again. Memory must hold the boot value (0) for the line because
        // no writeback ever committed.
        assert_eq!(m.committed_line_value(a.line(Default::default())), 0);
        // The program completed (re-execution after recovery).
        assert!(m.is_finished());
        assert!(r.metrics.irec_sizes.mean() >= 1.0);
    }
}
