//! The memory-access path: L1 → L2 → directory transactions, with
//! Rebound's dependence recording (Fig 3.2) woven through.

use rebound_coherence::MsgKind;
use rebound_engine::{Addr, CoreId, LineAddr, LineId};
use rebound_mem::{L1Line, L2Line, MemAccessClass, MesiState};

use crate::metrics::OverheadKind;

use super::{Machine, DELAYED_FLUSH_STALL};

impl Machine {
    /// Performs one memory access for `core`, returning its latency in
    /// cycles. `demand` is false only for accesses synthesized by the
    /// checkpoint machinery.
    pub(crate) fn access(&mut self, core: CoreId, addr: Addr, is_write: bool, demand: bool) -> u64 {
        let line = addr.line(self.geom);
        self.metrics.l1_accesses.incr();
        let idx = core.index();

        if !is_write {
            // Read: L1 hit is the fast path.
            if self.cores[idx].l1.get(line).is_some() {
                return self.cfg.l1_hit_cycles;
            }
            self.metrics.l2_accesses.incr();
            if let Some(l2) = self.cores[idx].l2.get(line) {
                debug_assert!(l2.state.is_valid());
                self.l1_fill(core, line);
                return self.cfg.l2_hit_cycles;
            }
            let id = self.lines.intern(line);
            let (lat, state, value) = self.read_transaction(core, line, id, demand);
            self.l2_insert(
                core,
                line,
                L2Line {
                    state,
                    value,
                    delayed: false,
                },
            );
            self.l1_fill(core, line);
            return lat;
        }

        // Store path. Every store of a dependence-tracked machine feeds the
        // write signature ("the addresses of all the lines that the
        // processor has written to ... in the current checkpoint interval").
        let tracked = self.tracks_addr(addr);
        if tracked {
            self.cores[idx].dep.active_mut().wsig.insert(line);
            self.metrics.wsig_ops.incr();
        }
        // Sync words (lock lines, barrier count/flag, BarCK_sent) are
        // lowered to real coherence stores, but they are machinery, not
        // application data: consuming a (core, store_seq) value for them
        // would couple every later data store's value to arrival order —
        // e.g. *which* core writes the barrier release flag is timing-
        // dependent, so one scheme (or a recovered faulty run) would
        // commit a shifted value sequence on that core and bit-exact
        // cross-run data comparisons would diverge on data lines.
        let is_sync = rebound_workloads::AddressLayout.is_sync(addr);
        let value = if is_sync {
            self.peek_store_value(core)
        } else {
            self.store_value(core)
        };
        // Rebound_Epoch: every data store stamps its line with the
        // writer's current epoch — the provenance of the line's *new*
        // value (overwrite, not max). Sync machinery is excluded: it is
        // never consumed through the probing access path.
        if !is_sync && matches!(self.cfg.scheme, crate::config::Scheme::Epoch { .. }) {
            let id = self.lines.intern(line);
            let epoch = self.cores[idx].epoch;
            self.stamp_line_epoch(id, epoch);
        }
        self.metrics.l2_accesses.incr();

        let l2_state = self.cores[idx].l2.peek(line).map(|l| (l.state, l.delayed));
        match l2_state {
            Some((state, delayed)) if state.can_write_silently() => {
                // A write to a still-Delayed line forces its checkpoint
                // value out to memory first (§4.1).
                if delayed {
                    self.flush_delayed_line(core, line);
                }
                let c = &mut self.cores[idx];
                let l = c.l2.get_mut(line).expect("peeked line present");
                l.state = MesiState::Modified;
                l.value = value;
                if c.l1.peek(line).is_some() {
                    c.l1.insert(line, L1Line);
                }
                self.cfg.l2_hit_cycles
            }
            Some((MesiState::Shared, _)) => {
                // Upgrade: invalidate the other sharers via the directory.
                let id = self.lines.intern(line);
                let lat = self.write_transaction(core, line, id, demand, true);
                let c = &mut self.cores[idx];
                let l = c.l2.get_mut(line).expect("upgrading resident line");
                l.state = MesiState::Modified;
                l.value = value;
                lat
            }
            _ => {
                // Write miss.
                let id = self.lines.intern(line);
                let lat = self.write_transaction(core, line, id, demand, false);
                self.l2_insert(
                    core,
                    line,
                    L2Line {
                        state: MesiState::Modified,
                        value,
                        delayed: false,
                    },
                );
                if self.cores[idx].l1.peek(line).is_some() {
                    self.cores[idx].l1.insert(line, L1Line);
                }
                lat
            }
        }
    }

    /// Fills a line into the L1, maintaining inclusion (silent eviction).
    fn l1_fill(&mut self, core: CoreId, line: LineAddr) {
        let _ = self.cores[core.index()].l1.insert(line, L1Line);
    }

    /// Inserts a line into the L2, handling the displaced victim: dirty
    /// victims are written back (and logged); L1 inclusion is maintained.
    pub(crate) fn l2_insert(&mut self, core: CoreId, line: LineAddr, data: L2Line) {
        let evicted = self.cores[core.index()].l2.insert(line, data);
        if let Some(ev) = evicted {
            self.handle_l2_eviction(core, ev.addr, ev.data);
        }
    }

    /// Handles an L2 eviction: inclusion invalidation, directory update,
    /// dirty writeback with logging. LW-ID is *not* cleared ("Doing so
    /// would result in losing the ability to record dependences", §3.3.1).
    fn handle_l2_eviction(&mut self, core: CoreId, line: LineAddr, data: L2Line) {
        self.cores[core.index()].l1.invalidate(line);
        let id = self.lines.intern(line);
        let mut e = self.dir.entry_mut(id);
        if e.owner() == Some(core) {
            e.set_owner(None);
            e.set_dirty(false);
        }
        e.remove_sharer(core);
        if data.state.is_dirty() {
            let (interval, class) = if data.delayed {
                (
                    self.cores[core.index()].drain.interval,
                    MemAccessClass::Checkpoint,
                )
            } else {
                (
                    self.cores[core.index()].dep.active().interval,
                    MemAccessClass::Demand,
                )
            };
            self.memory_writeback(core, line, data.value, interval, class);
        }
    }

    /// Writes `value` of `line` to memory on behalf of `core`, logging the
    /// old value (ReVive-style, §3.3.3) when the scheme checkpoints.
    /// Returns the controller completion latency relative to now.
    pub(crate) fn memory_writeback(
        &mut self,
        core: CoreId,
        line: LineAddr,
        value: u64,
        interval: u64,
        class: MemAccessClass,
    ) -> u64 {
        let logging = self.cfg.scheme.checkpoints();
        let resp = self.mem_ctl.access(self.now, line, class, logging);
        let id = self.lines.intern(line);
        let old = self.memory.write(id, value);
        if logging && self.log.append(core, interval, line, id, old) {
            self.metrics.log_entries.incr();
        }
        self.msgs.record(MsgKind::Writeback);
        self.metrics.mem_lines.incr();
        resp.complete_at.saturating_since(self.now)
    }

    /// Forces the checkpoint-time value of a Delayed line out to memory
    /// (write-to-delayed-line and ownership-transfer cases of §4.1).
    pub(crate) fn flush_delayed_line(&mut self, core: CoreId, line: LineAddr) {
        let idx = core.index();
        let Some(l) = self.cores[idx].l2.peek_mut(line) else {
            return;
        };
        if !l.delayed {
            return;
        }
        l.delayed = false;
        let value = l.value;
        // The flushed line keeps a clean copy: Modified → Exclusive.
        l.state = MesiState::Exclusive;
        let interval = self.cores[idx].drain.interval;
        let _ = self.memory_writeback(core, line, value, interval, MemAccessClass::Checkpoint);
        let id = self.lines.intern(line);
        self.dir.clean_owned_line(id, core);
        // The write waits only until the old value is safely in the L2's
        // writeback buffer (the controller transfer proceeds behind it);
        // charge that fixed pipeline cost as checkpoint overhead.
        self.cores[idx]
            .stall
            .add(OverheadKind::WbDelay, DELAYED_FLUSH_STALL);
    }

    // ------------------------------------------------------------------
    // Directory transactions
    // ------------------------------------------------------------------

    /// Read (GetS) transaction. `id` is `line`'s interned key (the caller
    /// already holds it, so the directory/memory lookups are pure array
    /// indexing). Returns (latency, granted MESI state, line value).
    fn read_transaction(
        &mut self,
        requester: CoreId,
        line: LineAddr,
        id: LineId,
        demand: bool,
    ) -> (u64, MesiState, u64) {
        self.msgs.record(MsgKind::GetS);
        let home = self.home_of(line);
        let mut lat = self.net.to_directory(requester, home);
        let dir_owner = self.dir.entry(id).owner();

        if let Some(owner) = dir_owner.filter(|&o| o != requester) {
            let owner_line = self.cores[owner.index()].l2.peek(line).copied();
            if let Some(ol) = owner_line.filter(|l| l.state.can_write_silently()) {
                // Forward to the owner; it supplies the data (Fig 3.2 RD row).
                self.msgs.record(MsgKind::FwdGetS);
                self.msgs.record(MsgKind::Data);
                lat += self.net.one_way(home, owner)
                    + self.net.one_way(owner, requester)
                    + self.cfg.l2_hit_cycles;
                let value = ol.value;
                if ol.state.is_dirty() {
                    // MESI M→S: dirty data is written back to memory. A
                    // Delayed line's flush is checkpoint-class traffic.
                    let (interval, class) = if ol.delayed {
                        (
                            self.cores[owner.index()].drain.interval,
                            MemAccessClass::Checkpoint,
                        )
                    } else {
                        (
                            self.cores[owner.index()].dep.active().interval,
                            MemAccessClass::Demand,
                        )
                    };
                    self.memory_writeback(owner, line, value, interval, class);
                }
                {
                    let l = self.cores[owner.index()]
                        .l2
                        .peek_mut(line)
                        .expect("owner line present");
                    l.state = MesiState::Shared;
                    l.delayed = false;
                }
                self.record_dependence(owner, requester, line, false);
                let mut e = self.dir.entry_mut(id);
                e.set_owner(None);
                e.set_dirty(false);
                e.insert_sharer(owner);
                e.insert_sharer(requester);
                return (lat, MesiState::Shared, value);
            }
            // Stale owner (should not normally happen: evictions update the
            // directory); fall through to a memory fetch.
            let mut e = self.dir.entry_mut(id);
            e.set_owner(None);
            e.set_dirty(false);
        }

        // One 16-byte entry read covers the rest of the transaction: the
        // scalars are extracted up front so the borrow ends before the
        // memory/network mutations below.
        let entry = self.dir.entry(id);
        let other_sharer = entry.sharers().find(|&s| s != requester);
        let has_sharers = !entry.sharers_empty();
        let lw_id = entry.lw_id();
        let value;
        let mut granted = MesiState::Shared;
        if let Some(sharer) = other_sharer {
            // Cache-to-cache transfer from a clean sharer.
            self.msgs.record(MsgKind::Data);
            lat += self.net.one_way(home, sharer)
                + self.net.one_way(sharer, requester)
                + self.cfg.l2_hit_cycles;
            value = self.memory.read(id); // clean copies match memory
        } else {
            // Fetch from memory.
            self.msgs.record(MsgKind::Data);
            let resp = self
                .mem_ctl
                .access(self.now, line, MemAccessClass::Demand, false);
            self.metrics.mem_lines.incr();
            lat += resp.complete_at.saturating_since(self.now);
            if demand && resp.interference > 0 {
                self.cores[requester.index()]
                    .stall
                    .add(OverheadKind::Ipc, resp.interference);
            }
            value = self.memory.read(id);
            if !has_sharers {
                granted = MesiState::Exclusive;
            }
        }

        // Lazy dependence recording against a (possibly stale) LW-ID.
        if self.tracks_line(line) {
            if let Some(w) = lw_id.filter(|&w| w != requester) {
                self.lw_query(w, requester, line, id);
            }
        }

        let tracked = self.tracks_line(line);
        let mut e = self.dir.entry_mut(id);
        if granted == MesiState::Exclusive {
            e.set_owner(Some(requester));
            e.set_dirty(false);
            // RDX: "a RDX transaction, like a WR one, saves the reader's
            // PID in LW-ID" (Fig 3.2) — the processor may write silently.
            if tracked {
                e.set_lw_id(Some(requester));
                self.metrics.lwid_updates.incr();
                self.cores[requester.index()]
                    .dep
                    .active_mut()
                    .wsig
                    .insert(line);
                self.metrics.wsig_ops.incr();
            }
        } else {
            e.insert_sharer(requester);
        }
        (lat, granted, value)
    }

    /// Write (GetX) transaction: invalidations, ownership transfer, LW-ID
    /// update. `upgrade` means the requester already holds the line Shared.
    fn write_transaction(
        &mut self,
        writer: CoreId,
        line: LineAddr,
        id: LineId,
        demand: bool,
        upgrade: bool,
    ) -> u64 {
        self.msgs.record(MsgKind::GetX);
        let home = self.home_of(line);
        let mut lat = self.net.to_directory(writer, home);
        let entry = self.dir.entry(id);
        let old_owner = entry.owner().filter(|&o| o != writer);
        let lw_id = entry.lw_id();

        // Invalidate all other sharers (in parallel; one round trip). The
        // sharer iterator owns its data, so the walk can mutate the cores
        // directly — no intermediate collection needed.
        let mut worst = 0;
        for s in entry.sharers() {
            if s == writer {
                continue;
            }
            self.msgs.record(MsgKind::Inval);
            self.msgs.record(MsgKind::InvAck);
            self.cores[s.index()].l1.invalidate(line);
            self.cores[s.index()].l2.invalidate(line);
            worst = worst.max(self.net.round_trip(home, s));
        }
        lat += worst;

        let mut fetched = upgrade;
        if let Some(owner) = old_owner {
            let has = self.cores[owner.index()]
                .l2
                .peek(line)
                .map(|l| (l.state, l.delayed, l.value));
            if let Some((state, delayed, value)) = has.filter(|(s, _, _)| s.is_valid()) {
                // Transfer ownership cache-to-cache.
                self.msgs.record(MsgKind::FwdGetS);
                self.msgs.record(MsgKind::Data);
                lat += self.net.one_way(home, owner)
                    + self.net.one_way(owner, writer)
                    + self.cfg.l2_hit_cycles;
                if delayed && state.is_dirty() {
                    // The checkpoint-time value must reach memory before
                    // the new owner overwrites the line (§4.1 semantics).
                    let interval = self.cores[owner.index()].drain.interval;
                    self.memory_writeback(owner, line, value, interval, MemAccessClass::Checkpoint);
                }
                self.record_dependence(owner, writer, line, false);
                self.cores[owner.index()].l1.invalidate(line);
                self.cores[owner.index()].l2.invalidate(line);
                fetched = true;
            } else {
                self.dir.entry_mut(id).set_owner(None);
            }
        } else if self.tracks_line(line) {
            // No owner to ride on: dependence recording needs an explicit
            // "are you the last writer?" query (the Table 6.1 extra traffic).
            if let Some(w) = lw_id.filter(|&w| w != writer) {
                self.lw_query(w, writer, line, id);
            }
        }

        if !fetched {
            // Write miss with no owner: fetch the line from memory.
            self.msgs.record(MsgKind::Data);
            let resp = self
                .mem_ctl
                .access(self.now, line, MemAccessClass::Demand, false);
            self.metrics.mem_lines.incr();
            lat += resp.complete_at.saturating_since(self.now);
            if demand && resp.interference > 0 {
                self.cores[writer.index()]
                    .stall
                    .add(OverheadKind::Ipc, resp.interference);
            }
        }

        let tracked = self.tracks_line(line);
        let mut e = self.dir.entry_mut(id);
        e.clear_sharers();
        e.set_owner(Some(writer));
        e.set_dirty(true);
        if tracked {
            e.set_lw_id(Some(writer));
            self.metrics.lwid_updates.incr();
        }
        lat
    }

    /// The lazy "are you the last writer?" query (§3.3.2): the LW-ID
    /// processor checks its WSIGs in reverse age; a hit records the
    /// dependence, a miss sends NO_WR and clears the stale LW-ID. The
    /// requester's MyProducers was already (optimistically) updated and is
    /// allowed to stay a superset.
    fn lw_query(&mut self, last_writer: CoreId, requester: CoreId, line: LineAddr, id: LineId) {
        self.msgs.record(MsgKind::LwQuery);
        self.metrics.wsig_ops.incr();
        let hit = {
            let w = &mut self.cores[last_writer.index()];
            w.dep.wsig_match_reverse_age(line)
        };
        let requester_bit = self.dep_bit_of(requester);
        let writer_bit = self.dep_bit_of(last_writer);
        match hit {
            Some(set_idx) => {
                self.msgs.record(MsgKind::LwAck);
                self.cores[last_writer.index()]
                    .dep
                    .set_mut(set_idx)
                    .my_consumers
                    .insert(requester_bit);
                // Oracle bookkeeping (exact, for the FP study).
                if let Some(exact_idx) = self.cores[last_writer.index()]
                    .dep
                    .exact_match_reverse_age(line)
                {
                    self.cores[last_writer.index()]
                        .dep
                        .set_mut(exact_idx)
                        .oracle_consumers
                        .insert(requester_bit);
                    self.cores[requester.index()]
                        .dep
                        .active_mut()
                        .oracle_producers
                        .insert(writer_bit);
                }
            }
            None => {
                self.msgs.record(MsgKind::NoWr);
                self.dir.entry_mut(id).set_lw_id(None);
            }
        }
        // MyProducers is updated before the reply can arrive (§3.3.2).
        self.cores[requester.index()]
            .dep
            .active_mut()
            .my_producers
            .insert(writer_bit);
    }

    /// Dependence recording when the supplier itself forwards the data
    /// (owner-forward paths): rides on existing protocol messages, so no
    /// extra traffic is counted.
    /// Whether dependence tracking applies to `line` (scheme + runtime
    /// switch + untracked address ranges).
    pub(crate) fn tracks_line(&self, line: LineAddr) -> bool {
        self.tracks_addr(line.base(self.geom))
    }

    fn record_dependence(
        &mut self,
        supplier: CoreId,
        requester: CoreId,
        line: LineAddr,
        _count_extra: bool,
    ) {
        if supplier == requester || !self.tracks_line(line) {
            return;
        }
        self.metrics.wsig_ops.incr();
        let requester_bit = self.dep_bit_of(requester);
        let supplier_bit = self.dep_bit_of(supplier);
        let hit = self.cores[supplier.index()]
            .dep
            .wsig_match_reverse_age(line);
        if let Some(set_idx) = hit {
            self.cores[supplier.index()]
                .dep
                .set_mut(set_idx)
                .my_consumers
                .insert(requester_bit);
            if let Some(exact_idx) = self.cores[supplier.index()]
                .dep
                .exact_match_reverse_age(line)
            {
                self.cores[supplier.index()]
                    .dep
                    .set_mut(exact_idx)
                    .oracle_consumers
                    .insert(requester_bit);
                self.cores[requester.index()]
                    .dep
                    .active_mut()
                    .oracle_producers
                    .insert(supplier_bit);
            }
        }
        self.cores[requester.index()]
            .dep
            .active_mut()
            .my_producers
            .insert(supplier_bit);
    }
}
