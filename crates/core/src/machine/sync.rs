//! Synchronization lowering: locks and the global barrier become real
//! shared-memory accesses, so inter-thread dependences at synchronization
//! points arise through the coherence protocol exactly as in Fig 4.2.

use rebound_engine::CoreId;
use rebound_workloads::AddressLayout;

use super::{Block, Machine, RunState};

impl Machine {
    /// Resumes a core `extra` cycles from now, respecting the execution
    /// gate (a NoDWB checkpoint in progress keeps it parked). An
    /// existing *future* busy horizon is kept — a rollback-restored
    /// barrier waiter released before its restoration completes must
    /// still serialize the recovery latency before executing.
    pub(crate) fn resume_core(&mut self, core: CoreId, extra: u64) {
        let now = self.now;
        if self.cores[core.index()].run == RunState::Done {
            // Resurrecting a finished core would double-count done_cores
            // and re-execute its End; record the violation (it names the
            // offending wake-up) and keep the core finished.
            self.note_proto_error(crate::proto::ProtoError::ResumedDoneCore { core });
            return;
        }
        let c = &mut self.cores[core.index()];
        c.run = RunState::Ready;
        c.busy_until = c.busy_until.max(now + extra);
        if !c.exec_gate {
            let at = c.busy_until;
            self.schedule_step(core, at);
        }
    }

    /// `Op::LockAcquire`: a read-modify-write on the lock's line (the
    /// test-and-set). The GetX picks up a WW dependence on the previous
    /// holder through LW-ID — which is how lock-heavy applications end up
    /// with near-global interaction sets (§6.1, Raytrace/Radiosity).
    pub(crate) fn lock_acquire(&mut self, core: CoreId, id: u32) {
        let layout = AddressLayout;
        let lat = self.access(core, layout.lock_line(id), true, true);
        self.cores[core.index()].insts += 1;
        let lock = &mut self.locks[id as usize];
        if lock.holder.is_none() {
            lock.holder = Some(core);
            self.resume_core(core, lat.max(1));
        } else {
            debug_assert_ne!(lock.holder, Some(core), "no recursive locks");
            lock.queue.push_back(core);
            let c = &mut self.cores[core.index()];
            c.run = RunState::Blocked(Block::Lock { id });
            c.step_gen += 1;
        }
    }

    /// `Op::LockRelease`: a store to the lock line; the next queued waiter
    /// is granted the lock and performs its own acquiring access (reading
    /// what the releaser wrote — the dependence of Fig 4.2(b)).
    pub(crate) fn lock_release(&mut self, core: CoreId, id: u32) {
        let layout = AddressLayout;
        let lat = self.access(core, layout.lock_line(id), true, true);
        self.cores[core.index()].insts += 1;
        let lock = &mut self.locks[id as usize];
        debug_assert_eq!(lock.holder, Some(core), "release by non-holder");
        lock.holder = None;
        let next = lock.queue.pop_front();
        if let Some(next) = next {
            self.locks[id as usize].holder = Some(next);
            // The waiter's retrying test-and-set finally succeeds.
            let grant_lat = self.access(next, layout.lock_line(id), true, true);
            self.cores[next.index()].insts += 1;
            self.resume_core(next, lat.max(1) + grant_lat.max(1));
        }
        self.resume_core(core, lat.max(1));
    }

    /// `Op::Barrier`: the Update critical section (an RMW on the count
    /// line) followed by a spin on the flag line, per Fig 4.2(a). The last
    /// arrival writes the flag; every waiter re-reads it on release, giving
    /// the all-processor dependence chain of Fig 4.2(b).
    pub(crate) fn barrier_arrive(&mut self, core: CoreId) {
        let layout = AddressLayout;

        // A re-executed arrival at an already-released barrier (§3.3.5):
        // the recovery line may straddle a barrier — the faulty core's
        // youngest checkpoint was not yet safe, so it rolled back to
        // before an arrival whose release other members (with safe
        // same-episode checkpoints) never undid. The release flag is
        // already set in memory, so the re-executed sense-reversing code
        // sails straight through; re-opening the episode would park the
        // core for arrivals that can never come.
        if self.cores[core.index()].barrier_passes < self.barrier.generation {
            let update_lat = self.access(core, layout.barrier_count_line(), true, true);
            let read_lat = self.access(core, layout.barrier_flag_line(), false, true);
            let c = &mut self.cores[core.index()];
            c.insts += 2;
            c.barrier_passes += 1;
            self.resume_core(core, (update_lat + read_lat).max(1));
            return;
        }

        let update_lat = self.access(core, layout.barrier_count_line(), true, true);
        {
            let c = &mut self.cores[core.index()];
            c.insts += 1;
            c.at_barrier = true;
            c.barck_arrived = true;
        }
        self.barrier.arrived += 1;

        // Barrier-optimization hook (§4.2.1): inside the Update section,
        // an interested processor that finds BarCK_sent clear elects
        // itself initiator of a proactive checkpoint.
        if self.cfg.scheme.barrier_opt()
            && !self.barrier.barck_active
            && self.barck_interested(core)
        {
            self.barck_initiate(core);
        }
        self.maybe_send_barck_done(core);

        if self.barrier.arrived == self.cores.len() {
            self.barrier.last_arrival = Some(core);
            // With an active barrier checkpoint, "the processor that
            // arrives at the barrier last is not allowed to set the flag
            // yet" (§4.2.1).
            if self.barrier.barck_active && !self.barck_all_done() {
                self.barrier.release_gated = true;
                let c = &mut self.cores[core.index()];
                c.run = RunState::Blocked(Block::BarrierFlag {
                    gen: self.barrier.generation,
                });
                c.step_gen += 1;
            } else {
                self.release_barrier(update_lat);
            }
        } else {
            // Spin on the flag: one initial read, then the core parks and
            // is woken by the flag write (spin-on-read costs nothing more
            // while the line stays cached Shared).
            let _ = self.access(core, layout.barrier_flag_line(), false, true);
            self.cores[core.index()].insts += 1;
            let gen = self.barrier.generation;
            self.barrier.waiters.push(core);
            let c = &mut self.cores[core.index()];
            c.run = RunState::Blocked(Block::BarrierFlag { gen });
            c.step_gen += 1;
        }
    }

    /// Releases the barrier: the last arrival writes the flag and every
    /// waiter re-reads it (consuming the write), then all continue.
    pub(crate) fn release_barrier(&mut self, extra: u64) {
        let layout = AddressLayout;
        let Some(last) = self.barrier.last_arrival else {
            let generation = self.barrier.generation;
            self.note_proto_error(crate::proto::ProtoError::ReleaseWithoutArrival { generation });
            return;
        };
        let flag_lat = self.access(last, layout.barrier_flag_line(), true, true);
        self.cores[last.index()].insts += 1;
        self.barrier.generation += 1;
        self.barrier.arrived = 0;
        self.barrier.last_arrival = None;
        self.barrier.release_gated = false;
        let waiters = std::mem::take(&mut self.barrier.waiters);
        for w in waiters {
            // The release re-read is the spinning load finally observing
            // the flag — the same spin instruction counted at arrival,
            // so it retires nothing new. (Counting it would also make a
            // core's instruction total depend on whether it arrived
            // last, breaking faulty-vs-golden instruction equality when
            // a rollback reshuffles arrival order.)
            let read_lat = self.access(w, layout.barrier_flag_line(), false, true);
            self.cores[w.index()].at_barrier = false;
            self.cores[w.index()].barrier_passes += 1;
            self.resume_core(w, flag_lat + read_lat.max(1));
        }
        self.cores[last.index()].at_barrier = false;
        self.cores[last.index()].barrier_passes += 1;
        self.resume_core(last, extra + flag_lat.max(1));
    }

    /// `Op::OutputIo`: output must be preceded by a checkpoint (§6.4), so
    /// the core initiates one and blocks until it completes. If the
    /// machinery is busy the op retries shortly.
    pub(crate) fn output_io(&mut self, core: CoreId) {
        use rebound_workloads::Op;
        match self.cfg.scheme {
            crate::config::Scheme::None => {
                self.cores[core.index()].insts += 1;
                self.resume_core(core, 1);
            }
            crate::config::Scheme::Global { .. } => {
                if self.global.active || self.global.draining > 0 {
                    // Retry once the current episode finishes.
                    self.cores[core.index()].resume_op = Some(Op::OutputIo);
                    self.resume_core(core, 500);
                } else {
                    self.cores[core.index()].insts += 1;
                    self.start_global_checkpoint(core);
                }
            }
            crate::config::Scheme::Rebound { .. } | crate::config::Scheme::Cluster { .. } => {
                let c = &self.cores[core.index()];
                if c.role != super::EpisodeState::Idle || c.drain.active {
                    self.cores[core.index()].resume_op = Some(Op::OutputIo);
                    self.resume_core(core, 500);
                } else {
                    self.cores[core.index()].insts += 1;
                    self.initiate_checkpoint(core, true);
                }
            }
            crate::config::Scheme::Epoch { .. } => {
                let c = &self.cores[core.index()];
                if c.role != super::EpisodeState::Idle || c.drain.active {
                    // The previous snapshot is still draining; retry once
                    // it finalizes.
                    self.cores[core.index()].resume_op = Some(Op::OutputIo);
                    self.resume_core(core, 500);
                } else {
                    let idx = core.index();
                    self.cores[idx].insts += 1;
                    self.cores[idx].epoch += 1;
                    self.take_epoch_snapshot(core, true);
                }
            }
        }
    }
}
