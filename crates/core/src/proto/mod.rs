//! The checkpoint-coordination protocol kernel.
//!
//! Everything that *decides* how an episode advances lives here, split
//! from the data plane that *executes* those decisions:
//!
//! * [`EpisodeState`] is one core's position in the coordination
//!   protocol (its full protocol state also includes the orthogonal
//!   background-drain flag and the deferred-BarCK flag, both owned by
//!   the machine — a core can be `Member` of an episode while its
//!   delayed writebacks drain, and a BarCK join can be pending in any
//!   state).
//! * [`ProtoMsg`] is the wire format between cores.
//! * [`transition`] is the kernel entry point: a **total** function from
//!   (machine observation, receiving core, message) to either a typed
//!   [`Transition`] — an ordered list of [`ProtoAction`]s for the
//!   executor — or a typed [`ProtoError`]. It never panics and never
//!   mutates; [`crate::Machine`] applies the actions.
//! * [`CoordinationProtocol`] is the pluggable protocol family:
//!   [`DistributedTwoPhase`] (the Rebound interaction-set protocol,
//!   §3.3.4, including the `Rebound_Cluster` truncation),
//!   [`GlobalCoordinator`] (the Global baselines) and [`BarCkOverlay`]
//!   (the barrier optimization, §4.2.1). A new scheme plugs in by
//!   implementing the trait and claiming its messages.
//!
//! Benign protocol races — stale epochs, messages from released or
//! aborted episodes, broadcasts crossing a completion — are *decisions*
//! (the kernel returns a [`ProtoAction::Drop`]), not errors. A
//! [`ProtoError`] means the machine reached a state the protocol has no
//! rule for: it names the core, the episode epoch and the offending
//! transition so an oracle failure is attributable from a campaign CSV
//! row, where the old code would have tripped a `debug_assert` or
//! panicked later with no cause attached.

mod barrier;
mod distributed;
mod epoch;
mod global;

use std::fmt;

use rebound_coherence::{CoreSet, MsgKind};
use rebound_engine::CoreId;

use crate::machine::{Machine, PROTO_HANDLE_COST};

pub use barrier::BarCkOverlay;
pub use distributed::DistributedTwoPhase;
pub use epoch::EpochPropagation;
pub use global::GlobalCoordinator;

pub(crate) use barrier::join as barck_join_transition;
pub(crate) use distributed::initiation_targets;
pub(crate) use global::resume as global_resume_transition;

/// Checkpoint/rollback protocol messages (§3.3.4–§3.3.5, §4.1–§4.2.1).
///
/// Local-checkpoint messages carry the initiator's `epoch` so replies from
/// an aborted (released and retried) episode are recognized as stale and
/// dropped instead of corrupting the new episode.
#[derive(Clone, Debug, PartialEq)]
pub enum ProtoMsg {
    /// CK? — join initiator's checkpoint; `from` is the consumer that asked.
    CkReq {
        initiator: CoreId,
        epoch: u64,
        from: CoreId,
    },
    /// Ack of a CK? back to the consumer that forwarded it.
    CkAck { from: CoreId },
    /// Accept to the initiator, carrying the accepter's MyProducers, the
    /// consumer whose CK? it answered (`via`), and whether it forwarded
    /// CK? onward — enough for the initiator to reconstruct exactly how
    /// many replies remain outstanding even when a core is asked twice.
    CkAccept {
        from: CoreId,
        via: CoreId,
        epoch: u64,
        producers: CoreSet,
        forwarded: bool,
    },
    /// Decline to the initiator (stale info or recent checkpoint).
    CkDecline { from: CoreId, epoch: u64 },
    /// Busy to the initiator (already in another checkpoint).
    CkBusy { from: CoreId, epoch: u64 },
    /// Nack: target is draining delayed writebacks (§4.1).
    CkNack { from: CoreId, epoch: u64 },
    /// Initiator releases an already-accepted participant after a Busy.
    CkRelease { initiator: CoreId, epoch: u64 },
    /// Start writing back dirty lines.
    CkStartWb { initiator: CoreId, epoch: u64 },
    /// Participant's writebacks (stalled or delayed) have drained.
    CkWbDone { from: CoreId, epoch: u64 },
    /// Episode complete: resume / recycle.
    CkComplete { initiator: CoreId, epoch: u64 },
    /// Global-scheme checkpoint interrupt.
    GlobalStart { coordinator: CoreId },
    /// Global-scheme per-core writeback completion.
    GlobalWbDone { from: CoreId },
    /// Global-scheme resume broadcast.
    GlobalResume,
    /// Barrier-optimization proactive checkpoint signal (§4.2.1).
    BarCk { initiator: CoreId },
    /// Participant finished both its barrier Update and its writebacks.
    BarCkDone { from: CoreId },
    /// Barrier checkpoint complete; the last arrival may set the flag.
    BarCkComplete,
    /// Self-addressed: a stalled (NoDWB) writeback burst finished.
    WbFlushDone,
    /// Self-addressed: delayed-writeback setup (bit flash + Dep rotation)
    /// finished; resume the application.
    SetupDone,
}

impl ProtoMsg {
    /// Short message name for diagnostics and error reports.
    pub fn name(&self) -> &'static str {
        match self {
            ProtoMsg::CkReq { .. } => "CkReq",
            ProtoMsg::CkAck { .. } => "CkAck",
            ProtoMsg::CkAccept { .. } => "CkAccept",
            ProtoMsg::CkDecline { .. } => "CkDecline",
            ProtoMsg::CkBusy { .. } => "CkBusy",
            ProtoMsg::CkNack { .. } => "CkNack",
            ProtoMsg::CkRelease { .. } => "CkRelease",
            ProtoMsg::CkStartWb { .. } => "CkStartWb",
            ProtoMsg::CkWbDone { .. } => "CkWbDone",
            ProtoMsg::CkComplete { .. } => "CkComplete",
            ProtoMsg::GlobalStart { .. } => "GlobalStart",
            ProtoMsg::GlobalWbDone { .. } => "GlobalWbDone",
            ProtoMsg::GlobalResume => "GlobalResume",
            ProtoMsg::BarCk { .. } => "BarCk",
            ProtoMsg::BarCkDone { .. } => "BarCkDone",
            ProtoMsg::BarCkComplete => "BarCkComplete",
            ProtoMsg::WbFlushDone => "WbFlushDone",
            ProtoMsg::SetupDone => "SetupDone",
        }
    }
}

/// Which checkpoint flavour a writeback phase belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WbKind {
    /// A Rebound interaction-set checkpoint.
    Local { initiator: CoreId, epoch: u64 },
    /// A Global-scheme checkpoint.
    Global { coordinator: CoreId },
    /// A barrier-optimization checkpoint (§4.2.1).
    Barrier { initiator: CoreId },
    /// An in-band epoch-propagation snapshot (`Rebound_Epoch`): taken
    /// locally on an interval boundary or on first observation of a
    /// newer epoch — no coordinator, no episode peers. `for_io` keeps
    /// the core parked to the end (output-I/O forced snapshots).
    Epoch { epoch: u64, for_io: bool },
}

/// Checkpoint-protocol position of one core.
///
/// Renamed from the pre-kernel `CkptRole`; the variants are the per-core
/// states of the episode state machine. The background-drain flag
/// ("Draining") and the deferred-join flag ("BarCkPending") are
/// deliberately *not* variants: both genuinely compose with every state
/// here (a `Member`'s delayed writebacks drain while it is a member; a
/// BarCK join can be deferred from any busy state), so they live as
/// orthogonal per-core flags and [`crate::fault::CorePhase`] projects
/// the composite for observers.
// `Initiating` carries two 1024-bit `CoreSet`s inline. The enum lives
// in a flat per-core array (hundreds of KB at worst, off the
// load/store path) and episode transitions are rare, so boxing would
// trade a per-initiation allocation for nothing measurable.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug, PartialEq)]
pub enum EpisodeState {
    /// Not involved in any checkpoint.
    Idle,
    /// Collecting its interaction set (§3.3.4).
    Initiating(InitState),
    /// Accepted an initiator's CK?; waiting for StartWB.
    Accepted { initiator: CoreId, epoch: u64 },
    /// Writing back (stalled, NoDWB) or draining (DWB) for an episode.
    Member { initiator: CoreId, epoch: u64 },
    /// Participating in a Global checkpoint.
    GlobalMember { coordinator: CoreId },
    /// Participating in a barrier-optimization checkpoint.
    BarMember { initiator: CoreId },
    /// Taking an in-band epoch snapshot (`Rebound_Epoch`): the local
    /// snapshot is committed and its writebacks are draining; the core
    /// resumes as soon as setup finishes, and the state returns to
    /// `Idle` when the drain's `WbFlushDone`/finalization lands. There
    /// is no initiator: epoch snapshots have no coordination peers.
    /// `for_io` marks a snapshot forced by output I/O, whose core stays
    /// parked until the snapshot fully completes.
    EpochSnap { epoch: u64, for_io: bool },
}

impl EpisodeState {
    /// Short state name for diagnostics and error reports.
    pub fn name(&self) -> &'static str {
        match self {
            EpisodeState::Idle => "Idle",
            EpisodeState::Initiating(_) => "Initiating",
            EpisodeState::Accepted { .. } => "Accepted",
            EpisodeState::Member { .. } => "Member",
            EpisodeState::GlobalMember { .. } => "GlobalMember",
            EpisodeState::BarMember { .. } => "BarMember",
            EpisodeState::EpochSnap { .. } => "EpochSnap",
        }
    }

    /// The epoch of the episode this state belongs to, when it has one.
    pub fn epoch(&self) -> Option<u64> {
        match self {
            EpisodeState::Initiating(st) => Some(st.epoch),
            EpisodeState::Accepted { epoch, .. }
            | EpisodeState::Member { epoch, .. }
            | EpisodeState::EpochSnap { epoch, .. } => Some(*epoch),
            _ => None,
        }
    }
}

/// Initiator-side collection state.
#[derive(Clone, Debug, PartialEq)]
pub struct InitState {
    /// This episode's epoch (stale-reply filtering).
    pub epoch: u64,
    /// Members so far (includes the initiator).
    pub ichk: CoreSet,
    /// Outstanding replies expected per core. A core may legitimately be
    /// asked more than once in one episode (e.g. by the initiator's
    /// producer expansion and by a cluster-mate's forward), and each CK?
    /// produces exactly one reply.
    pub expected: Vec<u8>,
    /// Phase 2: members whose WbDone has arrived.
    pub wb_done: CoreSet,
    /// Whether collection finished and writebacks were started.
    pub started: bool,
    /// Forced by output I/O (stall the core until complete).
    pub for_io: bool,
}

impl InitState {
    /// Whether any reply is still outstanding.
    pub fn awaiting(&self) -> bool {
        self.expected.iter().any(|&c| c > 0)
    }
}

/// Which protocol counter an action bumps.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProtoStat {
    /// A CK? was declined (stale producer info or released episode).
    Decline,
    /// A CK? was nacked by a draining target (§4.1).
    Nack,
}

/// One executor step decided by the kernel. The machine applies actions
/// strictly in order; every data-plane effect (cache flush, log append,
/// event scheduling, RNG draw) happens inside the executor primitive the
/// action names, never in the kernel.
#[derive(Clone, Debug, PartialEq)]
pub enum ProtoAction {
    /// Replace `core`'s episode state.
    SetState { core: CoreId, state: EpisodeState },
    /// Send a protocol message over the interconnect.
    Send {
        from: CoreId,
        to: CoreId,
        kind: MsgKind,
        msg: ProtoMsg,
    },
    /// Charge a protocol-interrupt handling cost to a running core.
    Interrupt { core: CoreId, cost: u64 },
    /// Count the incoming message as dropped (benign staleness).
    Drop,
    /// Bump a protocol metrics counter.
    Count(ProtoStat),
    /// Accelerate `core`'s in-progress background drain (post-Nack, §4.1).
    FastDrain { core: CoreId },
    /// Note the highest released epoch seen from `initiator` at `core`.
    NoteReleasedEpoch {
        core: CoreId,
        initiator: CoreId,
        epoch: u64,
    },
    /// Begin the member writeback phase of an episode at `core`.
    BeginMemberWb { core: CoreId, kind: WbKind },
    /// Initiator: collection finished — record metrics, order writebacks.
    StartWritebacks { core: CoreId },
    /// Initiator: abort collection — release members, back off, retry.
    AbortInitiation { core: CoreId },
    /// Initiator: every WbDone arrived — notify members, resume all.
    CompleteLocalEpisode {
        initiator: CoreId,
        ichk: CoreSet,
        epoch: u64,
    },
    /// Member: return to execution after its episode released/completed.
    /// `join_barck` re-checks a deferred BarCK join (local episodes only;
    /// the Global scheme has no barrier overlay).
    ResumeExecution { core: CoreId, join_barck: bool },
    /// Re-check a deferred BarCK join at `core` (post-release).
    MaybeJoinBarCk { core: CoreId },
    /// End a `Ckpt` block and reschedule `core` if runnable.
    Unblock { core: CoreId },
    /// Global scheme: record `from`'s writeback completion.
    GlobalAbsorbWbDone { from: CoreId },
    /// Global scheme: every member reported — broadcast the resume.
    GlobalComplete,
    /// BarCK: record `from`'s BarCkDone.
    BarCkAbsorbDone { from: CoreId },
    /// BarCK: every processor reported — broadcast BarCkComplete.
    BarCkEpisodeComplete,
    /// BarCK: defer the join until `core` leaves its current episode.
    DeferBarCk { core: CoreId },
    /// BarCK: reset `core`'s join flags ahead of its member writeback.
    ClearBarCkJoinFlags { core: CoreId },
    /// BarCK: clear `core`'s per-episode flags on BarCkComplete.
    ClearBarCkMemberFlags { core: CoreId },
    /// Release the gated barrier (the withheld flag write, §4.2.1).
    ReleaseBarrier,
    /// Complete `core`'s member checkpoint (stub, Dep set, notify).
    FinalizeMemberCkpt { core: CoreId },
}

/// The kernel's verdict on one incoming message: an ordered action list
/// for the executor.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Transition {
    /// Actions, applied strictly in order.
    pub actions: Vec<ProtoAction>,
}

impl Transition {
    /// An empty transition (the message is absorbed with no effect).
    pub fn new() -> Transition {
        Transition::default()
    }

    /// The benign-staleness transition: count the message as dropped.
    pub fn dropped() -> Transition {
        Transition {
            actions: vec![ProtoAction::Drop],
        }
    }

    /// Appends an action.
    pub fn push(&mut self, a: ProtoAction) {
        self.actions.push(a);
    }
}

/// A protocol violation: the machine observed a transition the protocol
/// has no rule for. Surfaced through [`Machine::proto_errors`] (and the
/// campaign CSV detail column on failing jobs) instead of a
/// `debug_assert`/panic, so the offending core, episode epoch and
/// transition are attributable after the fact.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProtoError {
    /// A message reached a protocol family that has no rule for it.
    UnroutedMessage { core: CoreId, msg: &'static str },
    /// An episode-wide step needs a coordinator/initiator the
    /// machine-level state no longer names.
    MissingCoordinator {
        /// Which transition needed it (message or primitive name).
        transition: &'static str,
        core: CoreId,
    },
    /// A resume targeted a core whose program already finished.
    ResumedDoneCore { core: CoreId },
    /// A drain completion fired with no active drain.
    DrainNotActive { core: CoreId, interval: u64 },
    /// A barrier release fired with no recorded last arrival.
    ReleaseWithoutArrival { generation: u64 },
    /// An executor primitive was invoked from a state that violates its
    /// precondition (a kernel/executor mismatch).
    BadPrimitive {
        /// The primitive whose precondition was violated.
        primitive: &'static str,
        core: CoreId,
        /// The episode state the core was actually in.
        state: &'static str,
        /// That state's episode epoch, when it has one.
        epoch: Option<u64>,
    },
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::UnroutedMessage { core, msg } => {
                write!(f, "P{}: no protocol rule for {msg}", core.index())
            }
            ProtoError::MissingCoordinator { transition, core } => write!(
                f,
                "P{}: {transition} with no coordinator/initiator recorded",
                core.index()
            ),
            ProtoError::ResumedDoneCore { core } => {
                write!(f, "P{}: resume of a finished core", core.index())
            }
            ProtoError::DrainNotActive { core, interval } => write!(
                f,
                "P{}: drain completion for interval {interval} with no active drain",
                core.index()
            ),
            ProtoError::ReleaseWithoutArrival { generation } => write!(
                f,
                "barrier release in generation {generation} with no last arrival"
            ),
            ProtoError::BadPrimitive {
                primitive,
                core,
                state,
                epoch,
            } => {
                write!(f, "P{}: {primitive} while {state}", core.index())?;
                if let Some(e) = epoch {
                    write!(f, " (epoch {e})")?;
                }
                Ok(())
            }
        }
    }
}

/// When an interval/forced boundary should start an episode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TriggerAction {
    /// Begin collecting a local interaction set (Rebound / Cluster).
    InitiateLocal {
        /// Forced by output I/O: the initiator stays parked to the end.
        for_io: bool,
    },
    /// Start a Global checkpoint with `core` as coordinator.
    StartGlobal,
    /// Take a local in-band epoch snapshot (`Rebound_Epoch`): bump the
    /// core's epoch and snapshot with no coordination round trips.
    EpochSnapshot {
        /// Forced by output I/O: the core stays parked until the
        /// snapshot's writebacks have fully drained.
        for_io: bool,
    },
}

/// A pluggable coordination-protocol family.
///
/// Implementations are stateless: all episode state lives in the machine
/// ([`EpisodeState`] per core plus the machine-level barrier/global
/// blocks), and both methods are **pure observations** — they read the
/// machine and return decisions; only the executor mutates. The
/// contract:
///
/// * [`CoordinationProtocol::on_msg`] must be total over every
///   (state, message) pair it owns: any message in any state yields
///   either a legal action list or a typed [`ProtoError`] — never a
///   panic, never an unreachable arm.
/// * Actions must be self-contained: the executor applies them in order
///   with no protocol knowledge of its own.
/// * Benign races (stale epochs, dead-episode stragglers) are decisions
///   ([`ProtoAction::Drop`]), not errors.
pub trait CoordinationProtocol: Sync {
    /// Scheme-family name for diagnostics.
    fn name(&self) -> &'static str;

    /// Interval-boundary decision: should `core` start an episode now?
    fn trigger(&self, m: &Machine, core: CoreId) -> Option<TriggerAction>;

    /// The transition `msg` arriving at `to` takes, as typed actions.
    fn on_msg(&self, m: &Machine, to: CoreId, msg: &ProtoMsg) -> Result<Transition, ProtoError>;
}

/// The protocol family that *initiates* episodes under `scheme`
/// (`None`: nobody initiates; message handling is scheme-independent —
/// see [`transition`]).
pub fn protocol_for(scheme: crate::config::Scheme) -> Option<&'static dyn CoordinationProtocol> {
    use crate::config::Scheme;
    match scheme {
        Scheme::None => None,
        Scheme::Global { .. } => Some(&GlobalCoordinator),
        Scheme::Rebound { .. } | Scheme::Cluster { .. } => Some(&DistributedTwoPhase),
        Scheme::Epoch { .. } => Some(&EpochPropagation),
    }
}

/// The kernel entry point: the total transition function for one
/// incoming message. Routes by message family — the receiving machine's
/// scheme never changes *which* rules apply, only which episodes can
/// exist — and never mutates; the executor applies the result.
pub fn transition(m: &Machine, to: CoreId, msg: &ProtoMsg) -> Result<Transition, ProtoError> {
    match msg {
        ProtoMsg::CkReq { .. }
        | ProtoMsg::CkAck { .. }
        | ProtoMsg::CkAccept { .. }
        | ProtoMsg::CkDecline { .. }
        | ProtoMsg::CkBusy { .. }
        | ProtoMsg::CkNack { .. }
        | ProtoMsg::CkRelease { .. }
        | ProtoMsg::CkStartWb { .. }
        | ProtoMsg::CkWbDone { .. }
        | ProtoMsg::CkComplete { .. } => DistributedTwoPhase.on_msg(m, to, msg),
        ProtoMsg::GlobalStart { .. } | ProtoMsg::GlobalWbDone { .. } | ProtoMsg::GlobalResume => {
            GlobalCoordinator.on_msg(m, to, msg)
        }
        ProtoMsg::BarCk { .. } | ProtoMsg::BarCkDone { .. } | ProtoMsg::BarCkComplete => {
            BarCkOverlay.on_msg(m, to, msg)
        }
        ProtoMsg::WbFlushDone | ProtoMsg::SetupDone => writeback_transition(m, to, msg),
    }
}

/// Transitions of the member-writeback machinery shared by every
/// episode flavour (self-addressed completion signals).
fn writeback_transition(m: &Machine, to: CoreId, msg: &ProtoMsg) -> Result<Transition, ProtoError> {
    let mut t = Transition::new();
    match msg {
        // A stalled (NoDWB) writeback burst completed.
        ProtoMsg::WbFlushDone => match &m.cores[to.index()].role {
            EpisodeState::Member { .. }
            | EpisodeState::GlobalMember { .. }
            | EpisodeState::EpochSnap { .. } => {
                t.push(ProtoAction::FinalizeMemberCkpt { core: to });
            }
            EpisodeState::Initiating(st) if st.started => {
                t.push(ProtoAction::FinalizeMemberCkpt { core: to });
            }
            _ => return Ok(Transition::dropped()),
        },
        // Delayed-writeback setup finished; resume the application
        // (unless the checkpoint precedes an output I/O, in which case
        // the initiator stays parked until completion).
        ProtoMsg::SetupDone => {
            let keep_parked = match &m.cores[to.index()].role {
                EpisodeState::Initiating(st) => st.for_io,
                EpisodeState::EpochSnap { for_io, .. } => *for_io,
                _ => false,
            };
            if !keep_parked
                && m.cores[to.index()].run
                    == crate::machine::RunState::Blocked(crate::machine::Block::Ckpt)
            {
                t.push(ProtoAction::Unblock { core: to });
            }
        }
        other => {
            return Err(ProtoError::UnroutedMessage {
                core: to,
                msg: other.name(),
            })
        }
    }
    Ok(t)
}

/// Shared helper: the half-cost Ack handshake transition.
pub(crate) fn ack_transition(to: CoreId) -> Transition {
    Transition {
        actions: vec![ProtoAction::Interrupt {
            core: to,
            cost: PROTO_HANDLE_COST / 2,
        }],
    }
}
