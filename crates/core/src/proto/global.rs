//! The Global / Global_DWB baseline coordinator: one interrupt fans out
//! to every processor, all write back, one broadcast resumes them
//! (Fig 4.1(a)/(b) at machine scale).

use rebound_engine::CoreId;

use crate::machine::{Machine, PROTO_HANDLE_COST};

use super::{
    CoordinationProtocol, EpisodeState, ProtoAction, ProtoError, ProtoMsg, Transition,
    TriggerAction, WbKind,
};

/// The Global-scheme coordination protocol.
pub struct GlobalCoordinator;

impl CoordinationProtocol for GlobalCoordinator {
    fn name(&self) -> &'static str {
        "global-coordinator"
    }

    /// Interval gate: one machine-wide episode at a time, started by the
    /// first idle core whose interval (or forced checkpoint) is due.
    fn trigger(&self, m: &Machine, core: CoreId) -> Option<TriggerAction> {
        let c = &m.cores[core.index()];
        let due = c.force_ckpt || c.insts >= c.next_ckpt_due;
        if !due || m.global.active || c.role != EpisodeState::Idle || c.drain.active {
            return None;
        }
        Some(TriggerAction::StartGlobal)
    }

    fn on_msg(&self, m: &Machine, to: CoreId, msg: &ProtoMsg) -> Result<Transition, ProtoError> {
        match *msg {
            ProtoMsg::GlobalStart { .. } => {
                if !m.global.active {
                    return Ok(Transition::dropped());
                }
                let Some(coordinator) = m.global.coordinator else {
                    return Err(ProtoError::MissingCoordinator {
                        transition: "GlobalStart",
                        core: to,
                    });
                };
                Ok(Transition {
                    actions: vec![
                        ProtoAction::Interrupt {
                            core: to,
                            cost: PROTO_HANDLE_COST,
                        },
                        ProtoAction::BeginMemberWb {
                            core: to,
                            kind: WbKind::Global { coordinator },
                        },
                    ],
                })
            }
            ProtoMsg::GlobalWbDone { from } => {
                if !m.global.active {
                    return Ok(Transition::dropped());
                }
                let mut done = m.global.wb_done;
                done.insert(from);
                let mut t = Transition::new();
                t.push(ProtoAction::GlobalAbsorbWbDone { from });
                if done.len() == m.cores.len() {
                    if m.global.coordinator.is_none() {
                        return Err(ProtoError::MissingCoordinator {
                            transition: "GlobalWbDone",
                            core: to,
                        });
                    }
                    t.push(ProtoAction::GlobalComplete);
                }
                Ok(t)
            }
            ProtoMsg::GlobalResume => Ok(resume(m, to)),
            ref other => Err(ProtoError::UnroutedMessage {
                core: to,
                msg: other.name(),
            }),
        }
    }
}

/// A member's resume decision — shared by the GlobalResume message path
/// and the coordinator's local completion.
pub(crate) fn resume(m: &Machine, core: CoreId) -> Transition {
    if !matches!(
        m.cores[core.index()].role,
        EpisodeState::GlobalMember { .. }
    ) {
        return Transition::dropped();
    }
    Transition {
        actions: vec![
            ProtoAction::SetState {
                core,
                state: EpisodeState::Idle,
            },
            ProtoAction::ResumeExecution {
                core,
                join_barck: false,
            },
        ],
    }
}
