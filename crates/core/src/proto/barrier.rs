//! The barrier checkpoint optimization overlay (§4.2.1): a proactive
//! episode elected inside the barrier Update section, its writebacks
//! hidden behind barrier imbalance, and the release flag gated until
//! every processor reports BarCkDone.

use rebound_engine::CoreId;

use crate::machine::{Machine, PROTO_HANDLE_COST};

use super::{
    CoordinationProtocol, EpisodeState, ProtoAction, ProtoError, ProtoMsg, Transition,
    TriggerAction, WbKind,
};

/// The barrier-optimization coordination overlay. It never triggers at
/// interval boundaries — episodes are elected inside the barrier Update
/// section — so [`CoordinationProtocol::trigger`] is always `None`.
pub struct BarCkOverlay;

impl CoordinationProtocol for BarCkOverlay {
    fn name(&self) -> &'static str {
        "barck-overlay"
    }

    fn trigger(&self, _m: &Machine, _core: CoreId) -> Option<TriggerAction> {
        None
    }

    fn on_msg(&self, m: &Machine, to: CoreId, msg: &ProtoMsg) -> Result<Transition, ProtoError> {
        match *msg {
            ProtoMsg::BarCk { initiator } => {
                if !m.barrier.barck_active {
                    return Ok(Transition::dropped());
                }
                let mut t = Transition::new();
                t.push(ProtoAction::Interrupt {
                    core: to,
                    cost: PROTO_HANDLE_COST,
                });
                t.actions.extend(join(m, to, initiator).actions);
                Ok(t)
            }
            ProtoMsg::BarCkDone { from } => {
                if !m.barrier.barck_active {
                    return Ok(Transition::dropped());
                }
                let mut done = m.barrier.barck_done;
                done.insert(from);
                let mut t = Transition::new();
                t.push(ProtoAction::BarCkAbsorbDone { from });
                if done.len() == m.cores.len() {
                    if m.barrier.barck_initiator.is_none() {
                        return Err(ProtoError::MissingCoordinator {
                            transition: "BarCkDone",
                            core: to,
                        });
                    }
                    t.push(ProtoAction::BarCkEpisodeComplete);
                }
                Ok(t)
            }
            ProtoMsg::BarCkComplete => {
                let mut t = Transition::new();
                t.push(ProtoAction::ClearBarCkMemberFlags { core: to });
                // The withheld flag write happens now (§4.2.1: "At this
                // point, the last arriving processor will write the flag").
                if m.barrier.release_gated && m.barrier.last_arrival == Some(to) {
                    t.push(ProtoAction::ReleaseBarrier);
                }
                Ok(t)
            }
            ref other => Err(ProtoError::UnroutedMessage {
                core: to,
                msg: other.name(),
            }),
        }
    }
}

/// The join decision (shared by the BarCk message path and the
/// machine-internal election/deferred-join paths): a busy core defers,
/// an idle one resets its flags and begins the barrier-flavour member
/// writeback.
pub(crate) fn join(m: &Machine, core: CoreId, initiator: CoreId) -> Transition {
    if m.cores[core.index()].role != EpisodeState::Idle || m.cores[core.index()].drain.active {
        return Transition {
            actions: vec![ProtoAction::DeferBarCk { core }],
        };
    }
    Transition {
        actions: vec![
            ProtoAction::ClearBarCkJoinFlags { core },
            ProtoAction::BeginMemberWb {
                core,
                kind: WbKind::Barrier { initiator },
            },
        ],
    }
}
