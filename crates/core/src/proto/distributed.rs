//! The distributed two-phase interaction-set protocol (§3.3.4): CK?
//! collection with Busy/Decline/Nack and release-and-backoff deadlock
//! avoidance, then the coordinated writeback phase.
//!
//! Under `Rebound` the collection set is the transitive producer
//! closure, discovered dynamically through CK? forwarding. Under
//! `Rebound_Cluster{k}` the interaction set is **truncated at the
//! static k-core cluster boundary**: the initiator asks exactly its
//! cluster-mates, accepters never forward, and the cluster checkpoints
//! as one unit — the midpoint between `Global` (k = machine) and the
//! per-interaction-set `Rebound` (whose unit is the dynamic closure).
//! Cross-cluster dependences are left to recovery: the rollback closure
//! chases consumers across cluster boundaries **and bounds each pulled
//! consumer's rollback target by its producer's target snapshot time**
//! (`machine/rollback.rs`) — without producer-covering episodes, a
//! consumer checkpoint taken after consuming soon-to-be-undone data
//! must itself be rolled past, or the recovery line would straddle the
//! dependence. The cluster thus trades longer (cascading) recovery for
//! collection traffic that never leaves the cluster.

use rebound_coherence::{CoreSet, MsgKind};
use rebound_engine::CoreId;

use crate::config::Scheme;
use crate::machine::{Machine, PROTO_HANDLE_COST};

use super::{
    ack_transition, CoordinationProtocol, EpisodeState, ProtoAction, ProtoError, ProtoMsg,
    ProtoStat, Transition, TriggerAction, WbKind,
};

/// The Rebound / Rebound_Cluster coordination protocol.
pub struct DistributedTwoPhase;

impl CoordinationProtocol for DistributedTwoPhase {
    fn name(&self) -> &'static str {
        "distributed-two-phase"
    }

    /// §3.3.4 initiation gate: idle, not draining, no BarCK pending or
    /// active, past any post-Busy backoff, and an interval (or forced
    /// checkpoint) due.
    fn trigger(&self, m: &Machine, core: CoreId) -> Option<TriggerAction> {
        let c = &m.cores[core.index()];
        if c.role != EpisodeState::Idle
            || c.drain.active
            || c.barck_pending
            || m.barrier.barck_active
            || m.now < c.backoff_until
        {
            return None;
        }
        let due = c.force_ckpt || c.insts >= c.next_ckpt_due;
        due.then_some(TriggerAction::InitiateLocal {
            for_io: c.force_ckpt,
        })
    }

    fn on_msg(&self, m: &Machine, to: CoreId, msg: &ProtoMsg) -> Result<Transition, ProtoError> {
        match *msg {
            ProtoMsg::CkReq {
                initiator,
                epoch,
                from,
            } => Ok(ck_req(m, to, initiator, epoch, from)),
            // Handshake of the forwarding chain; cost only.
            ProtoMsg::CkAck { .. } => Ok(ack_transition(to)),
            ProtoMsg::CkAccept {
                from,
                via,
                epoch,
                producers,
                forwarded,
            } => Ok(ck_accept(m, to, from, via, epoch, producers, forwarded)),
            ProtoMsg::CkDecline { from, epoch } => Ok(ck_decline(m, to, from, epoch)),
            ProtoMsg::CkBusy { epoch, .. } | ProtoMsg::CkNack { epoch, .. } => {
                Ok(ck_busy(m, to, epoch))
            }
            ProtoMsg::CkRelease { initiator, epoch } => Ok(ck_release(m, to, initiator, epoch)),
            ProtoMsg::CkStartWb { initiator, epoch } => Ok(ck_start_wb(m, to, initiator, epoch)),
            ProtoMsg::CkWbDone { from, epoch } => Ok(ck_wb_done(m, to, from, epoch)),
            ProtoMsg::CkComplete { initiator, epoch } => Ok(ck_complete(m, to, initiator, epoch)),
            ref other => Err(ProtoError::UnroutedMessage {
                core: to,
                msg: other.name(),
            }),
        }
    }
}

/// The cores an initiator must ask to join its episode (everyone it
/// will checkpoint with, except itself). `Rebound`: the dep-granularity
/// producer expansion plus the initiator's §8 cluster-mates.
/// `Rebound_Cluster`: exactly the static cluster — the set is truncated
/// at the cluster boundary by construction.
pub(crate) fn initiation_targets(m: &Machine, core: CoreId) -> CoreSet {
    let mut targets = if matches!(m.cfg.scheme, Scheme::Cluster { .. }) {
        m.scheme_cluster_mates(core)
    } else {
        let producers = m.cores[core.index()].dep.active().my_producers;
        m.expand_dep_bits(producers).union(m.cluster_mates(core))
    };
    targets.remove(core);
    targets
}

/// CK? arriving at a prospective producer (§3.3.4 receiver rules).
fn ck_req(m: &Machine, to: CoreId, initiator: CoreId, epoch: u64, from: CoreId) -> Transition {
    if to == initiator {
        return Transition::dropped();
    }
    let mut t = Transition::new();
    t.push(ProtoAction::Interrupt {
        core: to,
        cost: PROTO_HANDLE_COST,
    });
    match m.cores[to.index()].role.clone() {
        EpisodeState::Initiating(st) => {
            if !st.started && initiator < to {
                // Static priority: the lower-id initiator wins; back
                // down and reconsider the request as a normal core.
                t.push(ProtoAction::AbortInitiation { core: to });
                ck_req_idle(m, to, initiator, epoch, from, &mut t);
            } else {
                t.push(busy_reply(to, initiator, epoch));
            }
        }
        EpisodeState::Accepted {
            initiator: cur,
            epoch: cur_epoch,
        } => {
            if cur == initiator && cur_epoch == epoch {
                // Second CK? with the same initiator: Ack and Accept,
                // but do not forward again (§3.3.4).
                t.push(ack_reply(to, from));
                t.push(ProtoAction::Send {
                    from: to,
                    to: initiator,
                    kind: MsgKind::CkAccept,
                    msg: ProtoMsg::CkAccept {
                        from: to,
                        via: from,
                        epoch,
                        producers: CoreSet::new(),
                        forwarded: false,
                    },
                });
            } else {
                t.push(busy_reply(to, initiator, epoch));
            }
        }
        EpisodeState::Member { .. }
        | EpisodeState::GlobalMember { .. }
        | EpisodeState::BarMember { .. }
        | EpisodeState::EpochSnap { .. } => {
            // EpochSnap is unreachable here (the epoch scheme sends no
            // CK?), but a Busy keeps the rule total.
            t.push(busy_reply(to, initiator, epoch));
        }
        EpisodeState::Idle => ck_req_idle(m, to, initiator, epoch, from, &mut t),
    }
    t
}

/// The Idle-receiver rules of CK?: Decline stragglers and stale
/// producers, Nack while draining, otherwise accept (and, under
/// `Rebound`, forward to own producers — `Rebound_Cluster` truncates
/// the forward at the cluster boundary, which the initiator's ask
/// already covered).
fn ck_req_idle(
    m: &Machine,
    to: CoreId,
    initiator: CoreId,
    epoch: u64,
    from: CoreId,
    t: &mut Transition,
) {
    let idx = to.index();
    if m.cores[idx].released_epochs[initiator.index()] >= epoch {
        // Straggler CK? of an episode we were already released from.
        t.push(ProtoAction::Count(ProtoStat::Decline));
        t.push(ProtoAction::Send {
            from: to,
            to: initiator,
            kind: MsgKind::CkDecline,
            msg: ProtoMsg::CkDecline { from: to, epoch },
        });
        return;
    }
    if m.cores[idx].drain.active {
        // Still draining a delayed checkpoint: Nack and speed up (§4.1).
        t.push(ProtoAction::FastDrain { core: to });
        t.push(ProtoAction::Send {
            from: to,
            to: initiator,
            kind: MsgKind::CkNack,
            msg: ProtoMsg::CkNack { from: to, epoch },
        });
        t.push(ProtoAction::Count(ProtoStat::Nack));
        return;
    }
    let same_unit =
        m.dep_bit_of(to) == m.dep_bit_of(from) || m.scheme_cluster_mates(from).contains(to);
    let is_consumer = m.cores[idx]
        .dep
        .active()
        .my_consumers
        .contains(m.dep_bit_of(from));
    if !is_consumer && !same_unit {
        // Stale MyProducers at the consumer, or we checkpointed since:
        // Decline (§3.3.4 stop rule (iii)). Checkpoint-unit mates of a
        // checkpointing core are never declined: inside a cluster,
        // checkpointing is global (§8 extension / Rebound_Cluster).
        t.push(ProtoAction::Count(ProtoStat::Decline));
        t.push(ProtoAction::Send {
            from: to,
            to: initiator,
            kind: MsgKind::CkDecline,
            msg: ProtoMsg::CkDecline { from: to, epoch },
        });
        return;
    }
    t.push(ProtoAction::SetState {
        core: to,
        state: EpisodeState::Accepted { initiator, epoch },
    });
    t.push(ack_reply(to, from));
    if matches!(m.cfg.scheme, Scheme::Cluster { .. }) {
        // Cluster truncation: nothing to forward (the initiator asked
        // the whole unit), so the Accept carries no producer set.
        t.push(ProtoAction::Send {
            from: to,
            to: initiator,
            kind: MsgKind::CkAccept,
            msg: ProtoMsg::CkAccept {
                from: to,
                via: from,
                epoch,
                producers: CoreSet::new(),
                forwarded: false,
            },
        });
        return;
    }
    let producers = m.cores[idx].dep.active().my_producers;
    // The Accept carries the raw producer set plus `via`; the
    // initiator reconstructs this node's forward fan-out exactly.
    t.push(ProtoAction::Send {
        from: to,
        to: initiator,
        kind: MsgKind::CkAccept,
        msg: ProtoMsg::CkAccept {
            from: to,
            via: from,
            epoch,
            producers,
            forwarded: true,
        },
    });
    let targets = m.expand_dep_bits(producers).union(m.cluster_mates(to));
    for q in targets.iter() {
        if q != initiator && q != to && q != from {
            t.push(ProtoAction::Send {
                from: to,
                to: q,
                kind: MsgKind::CkRequest,
                msg: ProtoMsg::CkReq {
                    initiator,
                    epoch,
                    from: to,
                },
            });
        }
    }
}

fn ck_accept(
    m: &Machine,
    to: CoreId,
    from: CoreId,
    via: CoreId,
    epoch: u64,
    producers: CoreSet,
    forwarded: bool,
) -> Transition {
    let idx = to.index();
    let mut t = Transition::new();
    let st = match &m.cores[idx].role {
        EpisodeState::Initiating(st) if st.epoch == epoch && !st.started => st.clone(),
        _ => {
            // Late accept from a dead episode: release the sender so it
            // does not wait for a StartWB that will never come.
            t.push(ProtoAction::Send {
                from: to,
                to: from,
                kind: MsgKind::CkRelease,
                msg: ProtoMsg::CkRelease {
                    initiator: to,
                    epoch,
                },
            });
            t.push(ProtoAction::Drop);
            return t;
        }
    };
    // Replicate the accepter's forward fan-out so the outstanding-reply
    // counts stay exact even when a core is asked more than once.
    let fwd_targets = if forwarded {
        let mut targets = m.expand_dep_bits(producers).union(m.cluster_mates(from));
        targets.remove(to);
        targets.remove(from);
        targets.remove(via);
        targets
    } else {
        CoreSet::new()
    };
    let mut st = st;
    if st.expected[from.index()] > 0 {
        st.expected[from.index()] -= 1;
    }
    st.ichk.insert(from);
    for q in fwd_targets.iter() {
        st.expected[q.index()] += 1;
    }
    let ready = !st.awaiting();
    t.push(ProtoAction::SetState {
        core: to,
        state: EpisodeState::Initiating(st),
    });
    if ready {
        t.push(ProtoAction::StartWritebacks { core: to });
    }
    t
}

fn ck_decline(m: &Machine, to: CoreId, from: CoreId, epoch: u64) -> Transition {
    let idx = to.index();
    match &m.cores[idx].role {
        EpisodeState::Initiating(st) if st.epoch == epoch && !st.started => {
            let mut st = st.clone();
            if st.expected[from.index()] > 0 {
                st.expected[from.index()] -= 1;
            }
            // A decline never un-joins: the core may have accepted a
            // different CK? of this same episode already.
            let ready = !st.awaiting();
            let mut t = Transition::new();
            t.push(ProtoAction::SetState {
                core: to,
                state: EpisodeState::Initiating(st),
            });
            if ready {
                t.push(ProtoAction::StartWritebacks { core: to });
            }
            t
        }
        _ => Transition::dropped(),
    }
}

fn ck_busy(m: &Machine, to: CoreId, epoch: u64) -> Transition {
    match &m.cores[to.index()].role {
        EpisodeState::Initiating(st) if st.epoch == epoch && !st.started => Transition {
            actions: vec![ProtoAction::AbortInitiation { core: to }],
        },
        _ => Transition::dropped(),
    }
}

fn ck_release(m: &Machine, to: CoreId, initiator: CoreId, epoch: u64) -> Transition {
    let mut t = Transition::new();
    t.push(ProtoAction::NoteReleasedEpoch {
        core: to,
        initiator,
        epoch,
    });
    if m.cores[to.index()].role == (EpisodeState::Accepted { initiator, epoch }) {
        t.push(ProtoAction::SetState {
            core: to,
            state: EpisodeState::Idle,
        });
        t.push(ProtoAction::MaybeJoinBarCk { core: to });
    } else {
        t.push(ProtoAction::Drop);
    }
    t
}

fn ck_start_wb(m: &Machine, to: CoreId, initiator: CoreId, epoch: u64) -> Transition {
    if m.cores[to.index()].role == (EpisodeState::Accepted { initiator, epoch }) {
        Transition {
            actions: vec![
                ProtoAction::Interrupt {
                    core: to,
                    cost: PROTO_HANDLE_COST,
                },
                ProtoAction::BeginMemberWb {
                    core: to,
                    kind: WbKind::Local { initiator, epoch },
                },
            ],
        }
    } else {
        Transition::dropped()
    }
}

fn ck_wb_done(m: &Machine, to: CoreId, from: CoreId, epoch: u64) -> Transition {
    match &m.cores[to.index()].role {
        EpisodeState::Initiating(st) if st.epoch == epoch && st.started => {
            let mut st = st.clone();
            st.wb_done.insert(from);
            let complete = st.wb_done == st.ichk;
            let (ichk, epoch) = (st.ichk, st.epoch);
            let mut t = Transition::new();
            t.push(ProtoAction::SetState {
                core: to,
                state: EpisodeState::Initiating(st),
            });
            if complete {
                t.push(ProtoAction::CompleteLocalEpisode {
                    initiator: to,
                    ichk,
                    epoch,
                });
            }
            t
        }
        _ => Transition::dropped(),
    }
}

fn ck_complete(m: &Machine, to: CoreId, initiator: CoreId, epoch: u64) -> Transition {
    if m.cores[to.index()].role == (EpisodeState::Member { initiator, epoch }) {
        Transition {
            actions: vec![
                ProtoAction::SetState {
                    core: to,
                    state: EpisodeState::Idle,
                },
                ProtoAction::ResumeExecution {
                    core: to,
                    join_barck: true,
                },
            ],
        }
    } else {
        Transition::dropped()
    }
}

fn busy_reply(to: CoreId, initiator: CoreId, epoch: u64) -> ProtoAction {
    ProtoAction::Send {
        from: to,
        to: initiator,
        kind: MsgKind::CkBusy,
        msg: ProtoMsg::CkBusy { from: to, epoch },
    }
}

fn ack_reply(to: CoreId, from: CoreId) -> ProtoAction {
    ProtoAction::Send {
        from: to,
        to: from,
        kind: MsgKind::CkAck,
        msg: ProtoMsg::CkAck { from: to },
    }
}
