//! In-band epoch-propagation checkpointing (`Rebound_Epoch`) — the
//! Chandy–Lamport-style alternative to out-of-band coordination.
//!
//! Checkpoint epochs ride on the coherence fabric instead of dedicated
//! protocol messages. Every store stamps its line with the writer's
//! current epoch (`Machine::line_epochs`); when a core is about to
//! perform an access that would observe a line stamped with a *newer*
//! epoch, the machine first takes a local snapshot, adopts the newer
//! epoch, and only then re-issues the access (the pre-consumption order
//! is what makes the scheme sound: a snapshot taken *after* consuming
//! the data would embed state the producer's rollback later undoes). At
//! an interval boundary a core simply bumps its own epoch and snapshots
//! — no interaction-set collection, no CK? round trips, no
//! drain-for-collection stalls.
//!
//! The recovery line is derived after the fact from per-checkpoint
//! epoch tags: a record tagged `e` provably contains no influence of
//! data produced at epoch ≥ `e`, so rollback bounds each pulled
//! consumer's target by its producer's target epoch and tightens to a
//! fixpoint (`machine/rollback.rs` — the epoch generalization of the
//! cluster scheme's `taken_at` cycle bounding).
//!
//! This protocol therefore owns **no wire messages**: `trigger` is its
//! only kernel entry point, and the snapshot-on-observation path is
//! driven by the machine's access pipeline (`Machine::epoch_probe`).

use rebound_engine::CoreId;

use crate::machine::Machine;

use super::{CoordinationProtocol, EpisodeState, ProtoError, ProtoMsg, Transition, TriggerAction};

/// The `Rebound_Epoch` coordination protocol.
pub struct EpochPropagation;

impl CoordinationProtocol for EpochPropagation {
    fn name(&self) -> &'static str {
        "epoch-propagation"
    }

    /// Interval-boundary gate: idle (one snapshot at a time) with no
    /// drain still running from the previous snapshot, and an interval
    /// (or forced checkpoint) due. There is no backoff — nothing to
    /// collide with — and no barrier overlay under this scheme.
    fn trigger(&self, m: &Machine, core: CoreId) -> Option<TriggerAction> {
        let c = &m.cores[core.index()];
        if c.role != EpisodeState::Idle || c.drain.active {
            return None;
        }
        let due = c.force_ckpt || c.insts >= c.next_ckpt_due;
        due.then_some(TriggerAction::EpochSnapshot {
            for_io: c.force_ckpt,
        })
    }

    /// Epochs piggyback on coherence metadata, so no `ProtoMsg` belongs
    /// to this family; any message routed here is a protocol violation.
    fn on_msg(&self, _m: &Machine, to: CoreId, msg: &ProtoMsg) -> Result<Transition, ProtoError> {
        Err(ProtoError::UnroutedMessage {
            core: to,
            msg: msg.name(),
        })
    }
}
