//! The Write Signature (WSIG): a bloom filter over written lines.
//!
//! §3.3.2: because LW-ID may go stale and `MyProducers` is allowed to be a
//! superset, each L2 controller keeps a 512–1024 bit register that encodes,
//! with a Bloom filter, "the addresses of all the lines that the processor
//! has written to (or read exclusively) in the current checkpoint
//! interval". Membership tests can produce false positives (which only add
//! spurious dependences) but never false negatives.
//!
//! To measure the cost of false positives (Table 6.1, row 1), the model
//! optionally carries an exact shadow set alongside the bits; the protocol
//! *decisions* always use the bloom bits, the shadow only feeds metrics.

use rebound_engine::{FxHashSet, LineAddr};

/// A Bloom-filter write signature with an exact shadow set for
/// false-positive accounting.
///
/// # Example
///
/// ```
/// use rebound_core::Wsig;
/// use rebound_engine::LineAddr;
///
/// let mut w = Wsig::new(1024, 2);
/// w.insert(LineAddr(42));
/// assert!(w.contains(LineAddr(42)));   // no false negatives, ever
/// assert!(w.exact_contains(LineAddr(42)));
/// ```
#[derive(Clone, Debug)]
pub struct Wsig {
    bits: Vec<u64>,
    nbits: usize,
    hashes: usize,
    exact: FxHashSet<LineAddr>,
    false_positive_hits: u64,
}

/// Two independent SplitMix64 finalizations of `addr`, feeding the
/// Kirsch–Mitzenmacher double-hashing scheme `h_i = h1 + i*h2`.
#[inline]
fn hash_pair(addr: LineAddr) -> (u64, u64) {
    let mut x = addr.raw().wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    let h1 = x ^ (x >> 31);
    let mut y = h1.wrapping_add(0x9E37_79B9_7F4A_7C15);
    y = (y ^ (y >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    y = (y ^ (y >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    let h2 = (y ^ (y >> 31)) | 1;
    (h1, h2)
}

impl Wsig {
    /// Creates an empty signature of `nbits` bits probed by `hashes` hash
    /// functions per operation.
    ///
    /// # Panics
    ///
    /// Panics if `nbits` or `hashes` is zero.
    pub fn new(nbits: usize, hashes: usize) -> Wsig {
        assert!(nbits > 0 && hashes > 0, "WSIG needs bits and hashes");
        Wsig {
            bits: vec![0; nbits.div_ceil(64)],
            nbits,
            hashes,
            exact: FxHashSet::default(),
            false_positive_hits: 0,
        }
    }

    /// Records that the local processor wrote (or read-exclusively
    /// acquired) `addr` this interval.
    pub fn insert(&mut self, addr: LineAddr) {
        let (h1, h2) = hash_pair(addr);
        let n = self.nbits as u64;
        for i in 0..self.hashes as u64 {
            let p = (h1.wrapping_add(i.wrapping_mul(h2)) % n) as usize;
            self.bits[p / 64] |= 1 << (p % 64);
        }
        self.exact.insert(addr);
    }

    /// Bloom membership test — the answer the *hardware* gives. A `true`
    /// for a line not actually written is counted as a false-positive hit.
    pub fn contains(&mut self, addr: LineAddr) -> bool {
        let hit = self.peek(addr);
        if hit && !self.exact.contains(&addr) {
            self.false_positive_hits += 1;
        }
        hit
    }

    /// Non-mutating bloom test (no false-positive accounting).
    #[inline]
    pub fn peek(&self, addr: LineAddr) -> bool {
        let (h1, h2) = hash_pair(addr);
        let n = self.nbits as u64;
        (0..self.hashes as u64).all(|i| {
            let p = (h1.wrapping_add(i.wrapping_mul(h2)) % n) as usize;
            self.bits[p / 64] & (1 << (p % 64)) != 0
        })
    }

    /// Exact membership — the oracle used only for metrics.
    pub fn exact_contains(&self, addr: LineAddr) -> bool {
        self.exact.contains(&addr)
    }

    /// Lines actually written this interval.
    pub fn exact_len(&self) -> usize {
        self.exact.len()
    }

    /// Queries answered `true` for lines never written (so far).
    pub fn false_positive_hits(&self) -> u64 {
        self.false_positive_hits
    }

    /// Clears the signature — done "at the beginning of every checkpoint
    /// interval" (§3.3.2). False-positive accounting survives clears.
    pub fn clear(&mut self) {
        self.bits.iter_mut().for_each(|w| *w = 0);
        self.exact.clear();
    }

    /// Whether the signature holds no writes.
    pub fn is_empty(&self) -> bool {
        self.exact.is_empty() && self.bits.iter().all(|&w| w == 0)
    }

    /// Signature capacity in bits.
    pub fn nbits(&self) -> usize {
        self.nbits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives_ever() {
        let mut w = Wsig::new(256, 2);
        for i in 0..1000 {
            w.insert(LineAddr(i * 7));
        }
        for i in 0..1000 {
            assert!(w.contains(LineAddr(i * 7)), "false negative at {i}");
        }
    }

    #[test]
    fn empty_signature_matches_nothing() {
        let mut w = Wsig::new(1024, 2);
        for i in 0..1000 {
            assert!(!w.contains(LineAddr(i)));
        }
        assert_eq!(w.false_positive_hits(), 0);
        assert!(w.is_empty());
    }

    #[test]
    fn clear_resets_membership_but_not_fp_stats() {
        let mut w = Wsig::new(64, 2);
        for i in 0..200 {
            w.insert(LineAddr(i));
        }
        // A small, saturated filter: unqueried lines will false-positive.
        let mut fp = 0;
        for i in 1000..1100 {
            if w.contains(LineAddr(i)) {
                fp += 1;
            }
        }
        assert!(fp > 0, "a saturated 64-bit filter must alias");
        assert_eq!(w.false_positive_hits(), fp);
        w.clear();
        assert!(w.is_empty());
        assert!(!w.contains(LineAddr(5)));
        assert_eq!(w.false_positive_hits(), fp, "stats survive clear");
    }

    #[test]
    fn false_positive_rate_is_low_at_paper_size() {
        // 1024 bits, 2 hashes, ~100 written lines -> FP rate well under 10%.
        let mut w = Wsig::new(1024, 2);
        for i in 0..100 {
            w.insert(LineAddr(i));
        }
        let mut fp = 0;
        for i in 10_000..20_000 {
            if w.contains(LineAddr(i)) {
                fp += 1;
            }
        }
        let rate = fp as f64 / 10_000.0;
        assert!(rate < 0.10, "FP rate {rate} too high for 1024-bit WSIG");
    }

    #[test]
    fn exact_shadow_tracks_truth() {
        let mut w = Wsig::new(1024, 2);
        w.insert(LineAddr(1));
        assert!(w.exact_contains(LineAddr(1)));
        assert!(!w.exact_contains(LineAddr(2)));
        assert_eq!(w.exact_len(), 1);
    }

    #[test]
    fn peek_does_not_count_fps() {
        let mut w = Wsig::new(8, 4);
        for i in 0..64 {
            w.insert(LineAddr(i));
        }
        let before = w.false_positive_hits();
        let _ = w.peek(LineAddr(9999));
        assert_eq!(w.false_positive_hits(), before);
    }

    #[test]
    #[should_panic(expected = "bits and hashes")]
    fn zero_bits_rejected() {
        Wsig::new(0, 2);
    }

    #[test]
    fn smaller_filters_alias_more() {
        let count_fp = |bits: usize| {
            let mut w = Wsig::new(bits, 2);
            for i in 0..256 {
                w.insert(LineAddr(i));
            }
            let mut fp = 0;
            for i in 100_000..110_000 {
                if w.contains(LineAddr(i)) {
                    fp += 1;
                }
            }
            fp
        };
        let small = count_fp(256);
        let large = count_fp(4096);
        assert!(
            small > large,
            "aliasing must fall with size ({small} vs {large})"
        );
    }
}
