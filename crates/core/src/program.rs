//! What a simulated core executes: a workload stream or a test script.

use std::sync::Arc;

use rebound_workloads::{Op, OpStream};

/// The instruction source of one core.
///
/// Cloning a `CoreProgram` captures a complete architectural snapshot —
/// resuming from the clone replays exactly the same operations. The machine
/// clones the program at every checkpoint as the "register state" saved
/// with the checkpoint, and restores the clone on rollback.
///
/// # Example
///
/// ```
/// use rebound_core::CoreProgram;
/// use rebound_workloads::Op;
/// use rebound_engine::Addr;
///
/// let mut p = CoreProgram::script([Op::Store(Addr(64)), Op::Load(Addr(64))]);
/// assert_eq!(p.next_op(), Op::Store(Addr(64)));
/// let snap = p.clone();
/// assert_eq!(p.next_op(), Op::Load(Addr(64)));
/// assert_eq!(snap.clone().next_op(), Op::Load(Addr(64)));
/// assert_eq!(p.next_op(), Op::End);
/// ```
#[derive(Clone, Debug)]
pub enum CoreProgram {
    /// A synthetic-application stream (boxed: stream state is much larger
    /// than a script cursor, and programs are cloned at every checkpoint).
    Stream(Box<OpStream>),
    /// A fixed operation sequence (deterministic protocol tests, examples).
    Script {
        /// The shared, immutable script.
        ops: Arc<Vec<Op>>,
        /// Next position.
        pos: usize,
    },
}

impl CoreProgram {
    /// Wraps a workload stream.
    pub fn stream(s: OpStream) -> CoreProgram {
        CoreProgram::Stream(Box::new(s))
    }

    /// Builds a scripted program; after the script runs out it yields
    /// [`Op::End`] forever.
    pub fn script(ops: impl IntoIterator<Item = Op>) -> CoreProgram {
        CoreProgram::Script {
            ops: Arc::new(ops.into_iter().collect()),
            pos: 0,
        }
    }

    /// Produces the next operation.
    pub fn next_op(&mut self) -> Op {
        match self {
            CoreProgram::Stream(s) => s.next_op(),
            CoreProgram::Script { ops, pos } => {
                if *pos < ops.len() {
                    let op = ops[*pos];
                    *pos += 1;
                    op
                } else {
                    Op::End
                }
            }
        }
    }
}

impl From<OpStream> for CoreProgram {
    fn from(s: OpStream) -> CoreProgram {
        CoreProgram::stream(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rebound_engine::Addr;

    #[test]
    fn script_yields_in_order_then_end() {
        let mut p = CoreProgram::script([Op::Compute(5), Op::Load(Addr(32))]);
        assert_eq!(p.next_op(), Op::Compute(5));
        assert_eq!(p.next_op(), Op::Load(Addr(32)));
        assert_eq!(p.next_op(), Op::End);
        assert_eq!(p.next_op(), Op::End);
    }

    #[test]
    fn clone_replays_suffix() {
        let mut p = CoreProgram::script([Op::Compute(1), Op::Compute(2), Op::Compute(3)]);
        p.next_op();
        let mut snap = p.clone();
        assert_eq!(p.next_op(), snap.next_op());
        assert_eq!(p.next_op(), snap.next_op());
        assert_eq!(p.next_op(), Op::End);
    }

    #[test]
    fn empty_script_is_immediately_done() {
        let mut p = CoreProgram::script([]);
        assert_eq!(p.next_op(), Op::End);
    }
}
