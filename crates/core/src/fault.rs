//! Phase-aware fault injection (§3.2, §3.3.5).
//!
//! The paper's correctness claim is that Rebound recovers from a
//! transient fault *whenever* it strikes — including in the middle of a
//! checkpoint episode ("a fault detected in a processor while
//! checkpointing aborts the whole checkpoint", §3.3.5) and while another
//! processor is itself rolling back. Cycle-timed injection alone cannot
//! aim at those windows: their absolute cycle depends on the seed and
//! drifts with every timing change. A [`FaultTrigger`] instead describes
//! *when* a fault should be detected in terms the machine can evaluate
//! against its own observable state ([`Machine::core_phase`],
//! [`Machine::drain_depth`], [`Machine::rollback_window`]), and
//! [`Machine::arm_fault`] defers the injection until the trigger first
//! matches.
//!
//! Triggers are evaluated after every processed event, so a phase
//! trigger fires at the first event boundary where its condition holds —
//! deterministically, because the event order itself is deterministic.
//! Every detection that actually happens (armed or cycle-scheduled) is
//! recorded in [`Machine::fired_faults`] so harnesses can report the
//! exact cycle each trigger resolved to.

use rebound_engine::{CoreId, Cycle};

use crate::machine::Machine;

/// A checkpoint-protocol window a fault can be aimed at. Phases are
/// victim-relative except [`FaultPhase::BarrierEpisode`] and
/// [`FaultPhase::RollbackOfOther`], which observe machine-wide state.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultPhase {
    /// The victim is an initiator still collecting its interaction set
    /// (CK?s outstanding, writebacks not yet started — §3.3.4).
    CkptInitiate,
    /// The victim is draining delayed writebacks in the background
    /// (§4.1); its latest checkpoint is not yet safe.
    CkptDrain,
    /// The victim has joined another core's episode (Accepted or
    /// writing back as a member, local / Global / barrier flavours).
    MemberJoin,
    /// A barrier-optimization checkpoint episode is active anywhere in
    /// the machine (§4.2.1); the victim may be in any role.
    BarrierEpisode,
    /// Some *other* core's rollback/restore window is open — the fault
    /// lands while recovery of a different fault is still in flight.
    RollbackOfOther,
}

impl FaultPhase {
    /// Every phase, in a fixed order (campaign matrices iterate this).
    pub const ALL: [FaultPhase; 5] = [
        FaultPhase::CkptInitiate,
        FaultPhase::CkptDrain,
        FaultPhase::MemberJoin,
        FaultPhase::BarrierEpisode,
        FaultPhase::RollbackOfOther,
    ];

    /// Compact label used in plan names and result tables.
    pub fn label(self) -> &'static str {
        match self {
            FaultPhase::CkptInitiate => "init",
            FaultPhase::CkptDrain => "drain",
            FaultPhase::MemberJoin => "join",
            FaultPhase::BarrierEpisode => "barr",
            FaultPhase::RollbackOfOther => "rbk",
        }
    }
}

/// When an armed fault becomes *detected* at its victim core.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultTrigger {
    /// At a fixed cycle (the pre-existing model; timing-fragile but
    /// exactly reproducible).
    AtCycle(u64),
    /// The first time the observed machine state enters `phase`.
    OnPhase(FaultPhase),
    /// Right after the victim completes its `n`-th checkpoint (boot
    /// excluded), i.e. while its youngest safe line is brand new.
    AfterNthCheckpoint(u64),
    /// A burst: `count` detections at the victim, the first at cycle
    /// `start`, subsequent ones `gap` cycles apart — later ones land
    /// inside the recovery/re-execution of earlier ones.
    Storm { count: u32, start: u64, gap: u64 },
}

impl FaultTrigger {
    /// Compact label used in plan names and result tables:
    /// `@<cycle>`, `@<phase>`, `@ck<n>`, or `@storm<count>x<gap>+<start>`.
    pub fn label(&self) -> String {
        match self {
            FaultTrigger::AtCycle(t) => format!("@{t}"),
            FaultTrigger::OnPhase(p) => format!("@{}", p.label()),
            FaultTrigger::AfterNthCheckpoint(n) => format!("@ck{n}"),
            FaultTrigger::Storm { count, start, gap } => {
                format!("@storm{count}x{gap}+{start}")
            }
        }
    }

    /// Whether a *condition* trigger currently holds for `victim`.
    /// Time-based triggers ([`FaultTrigger::AtCycle`],
    /// [`FaultTrigger::Storm`]) are scheduled directly on the event
    /// queue and never polled.
    pub(crate) fn matches(&self, m: &Machine, victim: CoreId) -> bool {
        match *self {
            FaultTrigger::AtCycle(_) | FaultTrigger::Storm { .. } => false,
            FaultTrigger::OnPhase(phase) => match phase {
                FaultPhase::CkptInitiate => m.core_phase(victim) == CorePhase::Collecting,
                FaultPhase::CkptDrain => m.drain_depth(victim).is_some(),
                FaultPhase::MemberJoin => matches!(
                    m.core_phase(victim),
                    CorePhase::Accepted
                        | CorePhase::Member
                        | CorePhase::GlobalMember
                        | CorePhase::BarrierMember
                ),
                FaultPhase::BarrierEpisode => m.barrier_episode_active(),
                FaultPhase::RollbackOfOther => m
                    .rollback_window()
                    .map(|(cores, _)| !cores.contains(victim))
                    .unwrap_or(false),
            },
            FaultTrigger::AfterNthCheckpoint(n) => m.checkpoints_of(victim) >= n,
        }
    }
}

/// The externally observable checkpoint-episode phase of one core — a
/// projection of the machine's internal protocol role for fault
/// triggers, harness diagnostics and tests.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CorePhase {
    /// Not involved in any checkpoint episode.
    Idle,
    /// Initiator collecting its interaction set (replies outstanding).
    Collecting,
    /// Initiator whose episode's writebacks have started.
    InitiatorWb,
    /// Accepted an initiator's CK?; waiting for StartWB.
    Accepted,
    /// Member of another initiator's local episode.
    Member,
    /// Member of a Global-scheme episode.
    GlobalMember,
    /// Member of a barrier-optimization episode.
    BarrierMember,
}

/// A fault armed on the machine but not yet detected: the trigger is
/// re-evaluated after every event until it fires.
#[derive(Clone, Debug)]
pub(crate) struct PendingFault {
    pub victim: CoreId,
    pub trigger: FaultTrigger,
}

/// One fault detection that actually happened.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FiredFault {
    /// The core the fault was detected at.
    pub core: CoreId,
    /// The cycle detection happened (== rollback start).
    pub at: Cycle,
}
