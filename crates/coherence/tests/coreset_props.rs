//! Property tests: `CoreSet` behaves exactly like a `BTreeSet<usize>`.

use std::collections::BTreeSet;

use proptest::prelude::*;
use rebound_coherence::CoreSet;
use rebound_engine::CoreId;

fn to_btree(s: CoreSet) -> BTreeSet<usize> {
    s.iter().map(|c| c.index()).collect()
}

proptest! {
    #[test]
    fn insert_remove_matches_reference(
        ops in proptest::collection::vec((any::<bool>(), 0usize..64), 0..200),
    ) {
        let mut cs = CoreSet::new();
        let mut rf: BTreeSet<usize> = BTreeSet::new();
        for (insert, id) in ops {
            if insert {
                prop_assert_eq!(cs.insert(CoreId(id)), rf.insert(id));
            } else {
                prop_assert_eq!(cs.remove(CoreId(id)), rf.remove(&id));
            }
            prop_assert_eq!(cs.len(), rf.len());
        }
        prop_assert_eq!(to_btree(cs), rf);
    }

    #[test]
    fn algebra_matches_reference(
        a in proptest::collection::btree_set(0usize..64, 0..64),
        b in proptest::collection::btree_set(0usize..64, 0..64),
    ) {
        let ca: CoreSet = a.iter().map(|&i| CoreId(i)).collect();
        let cb: CoreSet = b.iter().map(|&i| CoreId(i)).collect();
        prop_assert_eq!(
            to_btree(ca.union(cb)),
            a.union(&b).copied().collect::<BTreeSet<_>>()
        );
        prop_assert_eq!(
            to_btree(ca.intersection(cb)),
            a.intersection(&b).copied().collect::<BTreeSet<_>>()
        );
        prop_assert_eq!(
            to_btree(ca.difference(cb)),
            a.difference(&b).copied().collect::<BTreeSet<_>>()
        );
        prop_assert_eq!(ca.is_subset(cb), a.is_subset(&b));
    }

    #[test]
    fn iteration_is_sorted_and_complete(
        ids in proptest::collection::btree_set(0usize..64, 0..64),
    ) {
        let cs: CoreSet = ids.iter().map(|&i| CoreId(i)).collect();
        let got: Vec<usize> = cs.iter().map(|c| c.index()).collect();
        let want: Vec<usize> = ids.into_iter().collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn bits_round_trip(bits in any::<u64>()) {
        let cs = CoreSet::from_bits(bits);
        prop_assert_eq!(cs.bits(), bits);
        prop_assert_eq!(cs.len(), bits.count_ones() as usize);
        let rebuilt: CoreSet = cs.iter().collect();
        prop_assert_eq!(rebuilt, cs);
    }
}
