//! Property tests: `CoreSet` behaves exactly like a `BTreeSet<usize>`.

use std::collections::BTreeSet;

use proptest::prelude::*;
use rebound_coherence::CoreSet;
use rebound_engine::CoreId;

fn to_btree(s: CoreSet) -> BTreeSet<usize> {
    s.iter().map(|c| c.index()).collect()
}

proptest! {
    #[test]
    fn insert_remove_matches_reference(
        ops in proptest::collection::vec((any::<bool>(), 0usize..1024), 0..200),
    ) {
        let mut cs = CoreSet::new();
        let mut rf: BTreeSet<usize> = BTreeSet::new();
        for (insert, id) in ops {
            if insert {
                prop_assert_eq!(cs.insert(CoreId(id)), rf.insert(id));
            } else {
                prop_assert_eq!(cs.remove(CoreId(id)), rf.remove(&id));
            }
            prop_assert_eq!(cs.len(), rf.len());
        }
        prop_assert_eq!(to_btree(cs), rf);
    }

    #[test]
    fn algebra_matches_reference(
        a in proptest::collection::btree_set(0usize..1024, 0..64),
        b in proptest::collection::btree_set(0usize..1024, 0..64),
    ) {
        let ca: CoreSet = a.iter().map(|&i| CoreId(i)).collect();
        let cb: CoreSet = b.iter().map(|&i| CoreId(i)).collect();
        prop_assert_eq!(
            to_btree(ca.union(cb)),
            a.union(&b).copied().collect::<BTreeSet<_>>()
        );
        prop_assert_eq!(
            to_btree(ca.intersection(cb)),
            a.intersection(&b).copied().collect::<BTreeSet<_>>()
        );
        prop_assert_eq!(
            to_btree(ca.difference(cb)),
            a.difference(&b).copied().collect::<BTreeSet<_>>()
        );
        prop_assert_eq!(ca.is_subset(cb), a.is_subset(&b));
    }

    #[test]
    fn iteration_is_sorted_and_complete(
        ids in proptest::collection::btree_set(0usize..1024, 0..64),
    ) {
        let cs: CoreSet = ids.iter().map(|&i| CoreId(i)).collect();
        let got: Vec<usize> = cs.iter().map(|c| c.index()).collect();
        let want: Vec<usize> = ids.into_iter().collect();
        prop_assert_eq!(got, want);
    }

    /// The widened 1024-bit mask at its word and legacy-capacity boundaries:
    /// random subsets always including the edge indices 0, 255, 256 (first
    /// index past the old 256-core limit) and 1023 (last representable).
    #[test]
    fn widened_boundaries_behave_like_interior(
        extra in proptest::collection::btree_set(0usize..1024, 0..32),
    ) {
        let mut ids = extra;
        for edge in [0usize, 255, 256, 1023] {
            ids.insert(edge);
        }
        let cs: CoreSet = ids.iter().map(|&i| CoreId(i)).collect();
        prop_assert_eq!(cs.len(), ids.len());
        for edge in [0usize, 255, 256, 1023] {
            prop_assert!(cs.contains(CoreId(edge)));
        }
        prop_assert!(cs.is_subset(CoreSet::all(1024)));
        let roundtrip: BTreeSet<usize> = to_btree(cs);
        prop_assert_eq!(&roundtrip, &ids);
        // Removing the edges behaves exactly like the reference set.
        let mut cs2 = cs;
        let mut rf = ids;
        for edge in [0usize, 255, 256, 1023] {
            prop_assert_eq!(cs2.remove(CoreId(edge)), rf.remove(&edge));
        }
        prop_assert_eq!(to_btree(cs2), rf);
    }

    #[test]
    fn bits_round_trip(bits in any::<u64>()) {
        let cs = CoreSet::from_bits(bits);
        prop_assert_eq!(cs.bits(), bits);
        prop_assert_eq!(cs.len(), bits.count_ones() as usize);
        let rebuilt: CoreSet = cs.iter().collect();
        prop_assert_eq!(rebuilt, cs);
    }
}
