//! Property tests: `SharerSet` (the directory's compact adaptive sharer
//! representation) behaves exactly like a `BTreeSet<usize>` — same
//! membership, same length, same ascending iteration order — across every
//! encoding (inline / mask / spill) and every promotion/demotion boundary,
//! at machine sizes from 1 to 1024 cores. The representation must also be
//! *canonical*: a set only occupies a spill slot while it genuinely needs
//! one, and shrinking hands the slot back.

use std::collections::BTreeSet;

use proptest::prelude::*;
use rebound_coherence::{CoreSet, SharerArena, SharerRepr, SharerSet};
use rebound_engine::CoreId;

fn members(s: SharerSet, arena: &SharerArena) -> Vec<usize> {
    s.iter(arena).map(|c| c.index()).collect()
}

/// The canonical-form invariant: ≤5 members are always inline, ≥6 members
/// all below core 60 are always a mask, and only the remainder spills —
/// and the arena holds a live slot exactly when something spilled.
fn assert_canonical(s: SharerSet, arena: &SharerArena, rf: &BTreeSet<usize>) {
    let expected = match (rf.len(), rf.iter().next_back()) {
        (n, _) if n <= SharerSet::INLINE_MAX => SharerRepr::Inline(n),
        (_, Some(&max)) if max < SharerSet::MASK_BITS => SharerRepr::Mask,
        _ => SharerRepr::Spill,
    };
    assert_eq!(s.repr(), expected, "non-canonical encoding for {rf:?}");
    let live = usize::from(expected == SharerRepr::Spill);
    assert_eq!(arena.live(), live, "spill slot accounting for {rf:?}");
}

/// One reference-checked mutation step.
#[derive(Clone, Debug)]
enum Op {
    Insert(usize),
    Remove(usize),
    /// Union a batch of members in (`extend_from` a `CoreSet`).
    Union(Vec<usize>),
    Clear,
}

fn op_strategy(cores: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0..cores).prop_map(Op::Insert),
        4 => (0..cores).prop_map(Op::Remove),
        1 => proptest::collection::vec(0..cores, 0..12).prop_map(Op::Union),
        1 => Just(Op::Clear),
    ]
}

proptest! {
    /// Random op sequences against the `BTreeSet` reference, with the
    /// machine size drawn from the full supported range so the inline,
    /// mask and spill planes (and both crossing directions) all run.
    #[test]
    fn matches_reference_at_any_machine_size(
        (_cores, ops) in (1usize..=1024).prop_flat_map(|cores| {
            (Just(cores), proptest::collection::vec(op_strategy(cores), 0..120))
        }),
    ) {
        let mut arena = SharerArena::new();
        let mut s = SharerSet::new();
        let mut rf: BTreeSet<usize> = BTreeSet::new();
        for op in ops {
            match op {
                Op::Insert(id) => {
                    prop_assert_eq!(s.insert(CoreId(id), &mut arena), rf.insert(id));
                }
                Op::Remove(id) => {
                    prop_assert_eq!(s.remove(CoreId(id), &mut arena), rf.remove(&id));
                }
                Op::Union(batch) => {
                    let src: CoreSet = batch.iter().map(|&i| CoreId(i)).collect();
                    s.extend_from(src, &mut arena);
                    rf.extend(batch);
                }
                Op::Clear => {
                    s.clear(&mut arena);
                    rf.clear();
                }
            }
            prop_assert_eq!(s.len(&arena), rf.len());
            prop_assert_eq!(s.is_empty(), rf.is_empty());
            assert_canonical(s, &arena, &rf);
        }
        prop_assert_eq!(members(s, &arena), rf.iter().copied().collect::<Vec<_>>());
        let as_coreset = s.to_coreset(&arena);
        prop_assert_eq!(as_coreset.len(), rf.len());
        for &id in &rf {
            prop_assert!(s.contains(CoreId(id), &arena));
            prop_assert!(as_coreset.contains(CoreId(id)));
        }
    }

    /// Walk a set straight across the inline↔spill boundary and back:
    /// grow to `peak` members (stride keeps some ≥ 60, forcing a spill),
    /// then shrink to nothing. Every intermediate state must stay
    /// canonical, and iteration must match the reference throughout.
    #[test]
    fn boundary_crossings_stay_canonical(
        peak in 6usize..40,
        stride in prop_oneof![Just(1usize), Just(7), Just(26), Just(61)],
    ) {
        let mut arena = SharerArena::new();
        let mut s = SharerSet::new();
        let mut rf: BTreeSet<usize> = BTreeSet::new();
        let ids: Vec<usize> = (0..peak).map(|k| (k * stride) % 1024).collect();
        for &id in &ids {
            s.insert(CoreId(id), &mut arena);
            rf.insert(id);
            assert_canonical(s, &arena, &rf);
            prop_assert_eq!(members(s, &arena), rf.iter().copied().collect::<Vec<_>>());
        }
        for &id in ids.iter().rev() {
            s.remove(CoreId(id), &mut arena);
            rf.remove(&id);
            assert_canonical(s, &arena, &rf);
            prop_assert_eq!(members(s, &arena), rf.iter().copied().collect::<Vec<_>>());
        }
        prop_assert!(s.is_empty());
        prop_assert_eq!(arena.live(), 0);
    }
}

/// Regression: a set that spills and then shrinks back must return its
/// arena slot (and the slot must be reused, not leaked) — the property
/// that keeps a transient all-cores burst from permanently costing 128
/// bytes per line.
#[test]
fn shrink_reclaims_the_spill_slot() {
    let mut arena = SharerArena::new();
    let mut s = SharerSet::new();
    for c in 0..200 {
        s.insert(CoreId(c), &mut arena);
    }
    assert_eq!(s.repr(), SharerRepr::Spill);
    assert_eq!((arena.live(), arena.capacity()), (1, 1));

    // Shrink back under the inline bound: the slot must be freed.
    for c in 4..200 {
        s.remove(CoreId(c), &mut arena);
    }
    assert_eq!(s.repr(), SharerRepr::Inline(4));
    assert_eq!(arena.live(), 0, "slot not reclaimed on shrink");
    assert_eq!(
        s.iter(&arena).map(|c| c.index()).collect::<Vec<_>>(),
        vec![0, 1, 2, 3]
    );

    // Spill again: the freed slot is reused, the arena does not grow.
    for c in 0..100 {
        s.insert(CoreId(c + 900), &mut arena);
    }
    assert_eq!(s.repr(), SharerRepr::Spill);
    assert_eq!(
        (arena.live(), arena.capacity()),
        (1, 1),
        "freed slot must be reused, not leaked"
    );
}
