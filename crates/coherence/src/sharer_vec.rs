//! Alternative directory sharer representations (the paper's §8: *"as the
//! number of processors increases, the directory may have pointers to
//! groups (or clusters) of processors"*).
//!
//! A full-map directory stores one presence bit per core per entry — exact
//! but linear in machine size. The two classic compressed organizations
//! trade precision for storage:
//!
//! * **Coarse vector**: one bit per *cluster* of `k` cores. Any member
//!   caching the line sets the cluster's bit; an invalidation must be sent
//!   to every core of every set cluster.
//! * **Limited pointer** (Dir<sub>i</sub>B): up to `i` exact core
//!   pointers; on pointer overflow the entry degrades to broadcast and an
//!   invalidation goes to everyone.
//!
//! Both over-approximate the true sharer set, so invalidations (and, for
//! Rebound, dependence-recording messages) fan out to cores that never
//! cached the line. [`SharerVector::targets`] returns exactly that
//! over-approximation, letting the `directory_orgs` harness price each
//! organization's extra traffic against its storage on real traces.

use crate::coreset::CoreSet;
use crate::sharer_set::{SharerArena, SharerSet};
use rebound_engine::CoreId;
use std::fmt;

/// Which representation a [`SharerVector`] uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DirOrg {
    /// One presence bit per core (exact).
    FullMap,
    /// One presence bit per cluster of `cluster` cores.
    CoarseVector {
        /// Cores per cluster (must divide into the machine; the last
        /// cluster may be short).
        cluster: usize,
    },
    /// Up to `pointers` exact core ids; overflow degrades to broadcast.
    LimitedPointer {
        /// Pointer slots per entry.
        pointers: usize,
    },
}

impl DirOrg {
    /// Directory storage bits per entry for an `n`-core machine (the
    /// sharer field only; owner/state bits are common to all).
    pub fn bits_per_entry(self, n: usize) -> usize {
        match self {
            DirOrg::FullMap => n,
            DirOrg::CoarseVector { cluster } => n.div_ceil(cluster),
            // Each pointer needs log2(n) bits, plus one broadcast bit.
            DirOrg::LimitedPointer { pointers } => {
                pointers * (usize::BITS - (n - 1).leading_zeros()) as usize + 1
            }
        }
    }
}

impl fmt::Display for DirOrg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DirOrg::FullMap => write!(f, "full-map"),
            DirOrg::CoarseVector { cluster } => write!(f, "coarse-{cluster}"),
            DirOrg::LimitedPointer { pointers } => write!(f, "dir{pointers}B"),
        }
    }
}

/// One directory entry's sharer field under a chosen organization.
///
/// # Example
///
/// ```
/// use rebound_coherence::{DirOrg, SharerVector};
/// use rebound_engine::CoreId;
///
/// let mut v = SharerVector::new(DirOrg::CoarseVector { cluster: 4 }, 16);
/// v.add(CoreId(5));
/// // The whole cluster {4,5,6,7} becomes an invalidation target.
/// assert_eq!(v.targets().len(), 4);
/// assert!(v.targets().contains(CoreId(6)));
/// ```
#[derive(Clone, Debug)]
pub struct SharerVector {
    org: DirOrg,
    ncores: usize,
    /// Exact sharers (ground truth for precision accounting), held in the
    /// compact adaptive representation with a private spill backing — the
    /// common ≤2-sharer line costs one word, not a 128-byte mask.
    exact: SharerSet,
    spill: SharerArena,
    /// Limited-pointer state: the stored pointers, or broadcast.
    pointers: Vec<CoreId>,
    broadcast: bool,
}

impl SharerVector {
    /// An empty sharer field for an `n`-core machine.
    ///
    /// # Panics
    ///
    /// Panics if `n` is 0 or exceeds [`CoreSet::MAX_CORES`], if a coarse
    /// cluster is 0, or if a limited-pointer count is 0.
    pub fn new(org: DirOrg, n: usize) -> SharerVector {
        assert!(
            n > 0 && n <= CoreSet::MAX_CORES,
            "1..={} cores supported, got {n}",
            CoreSet::MAX_CORES
        );
        match org {
            DirOrg::CoarseVector { cluster } => assert!(cluster > 0, "cluster must be > 0"),
            DirOrg::LimitedPointer { pointers } => assert!(pointers > 0, "need >= 1 pointer"),
            DirOrg::FullMap => {}
        }
        SharerVector {
            org,
            ncores: n,
            exact: SharerSet::new(),
            spill: SharerArena::new(),
            pointers: Vec::new(),
            broadcast: false,
        }
    }

    /// The organization in use.
    pub fn org(&self) -> DirOrg {
        self.org
    }

    /// Records that `core` now caches the line.
    pub fn add(&mut self, core: CoreId) {
        assert!(core.index() < self.ncores, "core out of range");
        self.exact.insert(core, &mut self.spill);
        if let DirOrg::LimitedPointer { pointers } = self.org {
            if !self.broadcast && !self.pointers.contains(&core) {
                if self.pointers.len() < pointers {
                    self.pointers.push(core);
                } else {
                    // Dir_iB overflow: degrade to broadcast.
                    self.broadcast = true;
                    self.pointers.clear();
                }
            }
        }
    }

    /// Resets the field, as an invalidating write or displacement of the
    /// last copy does.
    pub fn clear(&mut self) {
        self.exact.clear(&mut self.spill);
        self.pointers.clear();
        self.broadcast = false;
    }

    /// The exact sharer set (what a full map would store).
    pub fn exact(&self) -> CoreSet {
        self.exact.to_coreset(&self.spill)
    }

    /// The cores an invalidation (or a Rebound dependence-maintenance
    /// message) must be sent to under this organization — always a
    /// superset of [`SharerVector::exact`].
    pub fn targets(&self) -> CoreSet {
        match self.org {
            DirOrg::FullMap => self.exact(),
            DirOrg::CoarseVector { cluster } => {
                let mut t = CoreSet::new();
                for s in self.exact.iter(&self.spill) {
                    let base = (s.index() / cluster) * cluster;
                    for c in base..(base + cluster).min(self.ncores) {
                        t.insert(CoreId(c));
                    }
                }
                t
            }
            DirOrg::LimitedPointer { .. } => {
                if self.broadcast {
                    CoreSet::all(self.ncores)
                } else {
                    self.exact()
                }
            }
        }
    }

    /// Invalidations wasted on non-sharers for one full invalidation of
    /// this entry.
    pub fn overshoot(&self) -> usize {
        self.targets().len() - self.exact.len(&self.spill)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn full_map_is_exact() {
        let mut v = SharerVector::new(DirOrg::FullMap, 16);
        for c in [0usize, 5, 9] {
            v.add(CoreId(c));
        }
        assert_eq!(v.targets(), v.exact());
        assert_eq!(v.overshoot(), 0);
    }

    #[test]
    fn coarse_vector_rounds_up_to_clusters() {
        let mut v = SharerVector::new(DirOrg::CoarseVector { cluster: 4 }, 16);
        v.add(CoreId(0));
        v.add(CoreId(9));
        let t = v.targets();
        assert_eq!(t.len(), 8, "two clusters of four");
        assert!(t.contains(CoreId(3)) && t.contains(CoreId(11)));
        assert_eq!(v.overshoot(), 6);
    }

    #[test]
    fn coarse_vector_short_last_cluster() {
        let mut v = SharerVector::new(DirOrg::CoarseVector { cluster: 4 }, 10);
        v.add(CoreId(9));
        assert_eq!(v.targets().len(), 2, "last cluster holds only {{8,9}}");
    }

    #[test]
    fn limited_pointer_exact_until_overflow() {
        let mut v = SharerVector::new(DirOrg::LimitedPointer { pointers: 2 }, 16);
        v.add(CoreId(1));
        v.add(CoreId(2));
        assert_eq!(v.overshoot(), 0);
        v.add(CoreId(3)); // third sharer: overflow to broadcast
        assert_eq!(v.targets().len(), 16);
        assert_eq!(v.overshoot(), 13);
    }

    #[test]
    fn readding_a_pointer_is_not_overflow() {
        let mut v = SharerVector::new(DirOrg::LimitedPointer { pointers: 2 }, 8);
        v.add(CoreId(1));
        v.add(CoreId(1));
        v.add(CoreId(2));
        assert_eq!(v.overshoot(), 0, "duplicate adds must not consume pointers");
    }

    #[test]
    fn clear_resets_broadcast() {
        let mut v = SharerVector::new(DirOrg::LimitedPointer { pointers: 1 }, 8);
        v.add(CoreId(0));
        v.add(CoreId(1));
        assert_eq!(v.targets().len(), 8);
        v.clear();
        v.add(CoreId(3));
        assert_eq!(v.targets().len(), 1, "broadcast state must not be sticky");
    }

    #[test]
    fn large_machines_are_priced() {
        // PR 6 pushed the machine model to 1024 cores; the §8 organization
        // pricing must follow (the old 64-core cap silently barred it).
        let n = CoreSet::MAX_CORES;
        let mut v = SharerVector::new(DirOrg::CoarseVector { cluster: 16 }, n);
        v.add(CoreId(1000));
        v.add(CoreId(3));
        assert_eq!(v.exact().len(), 2);
        assert_eq!(v.targets().len(), 32, "two 16-core clusters");
        assert_eq!(v.overshoot(), 30);

        let mut lp = SharerVector::new(DirOrg::LimitedPointer { pointers: 2 }, 256);
        lp.add(CoreId(70));
        lp.add(CoreId(200));
        lp.add(CoreId(5));
        assert_eq!(lp.targets().len(), 256, "overflow broadcasts to all 256");
        assert_eq!(DirOrg::FullMap.bits_per_entry(1024), 1024);
        assert_eq!(
            DirOrg::LimitedPointer { pointers: 4 }.bits_per_entry(1024),
            41
        );
    }

    #[test]
    fn storage_accounting() {
        assert_eq!(DirOrg::FullMap.bits_per_entry(64), 64);
        assert_eq!(DirOrg::CoarseVector { cluster: 4 }.bits_per_entry(64), 16);
        // 4 pointers * 6 bits + broadcast bit.
        assert_eq!(
            DirOrg::LimitedPointer { pointers: 4 }.bits_per_entry(64),
            25
        );
    }

    #[test]
    fn display_labels() {
        assert_eq!(DirOrg::FullMap.to_string(), "full-map");
        assert_eq!(DirOrg::CoarseVector { cluster: 8 }.to_string(), "coarse-8");
        assert_eq!(DirOrg::LimitedPointer { pointers: 3 }.to_string(), "dir3B");
    }

    proptest! {
        /// Every organization's targets are a superset of the exact
        /// sharers, and full-map is always exactly the sharers.
        #[test]
        fn targets_contain_exact(
            adds in proptest::collection::vec(0usize..32, 0..40),
            cluster in 1usize..9,
            pointers in 1usize..6,
        ) {
            let orgs = [
                DirOrg::FullMap,
                DirOrg::CoarseVector { cluster },
                DirOrg::LimitedPointer { pointers },
            ];
            for org in orgs {
                let mut v = SharerVector::new(org, 32);
                for &a in &adds {
                    v.add(CoreId(a));
                }
                prop_assert!(v.exact().is_subset(v.targets()), "{org}");
                if org == DirOrg::FullMap {
                    prop_assert_eq!(v.overshoot(), 0);
                }
            }
        }
    }
}
