//! Message taxonomy and traffic accounting.
//!
//! Table 6.1 of the paper reports the *additional* number of messages — over
//! the regular cache-coherence protocol — needed to maintain the LW-ID bits
//! and Dep registers (on average +4.2%). To reproduce that row, every
//! message the simulated machine sends is classified as baseline coherence,
//! dependence maintenance, or checkpoint/rollback protocol, and counted.

use std::fmt;

use rebound_engine::Counter;

/// Every message type the simulated machine exchanges.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MsgKind {
    // --- Baseline directory-protocol messages -------------------------
    /// Read request to the home directory.
    GetS,
    /// Write / read-exclusive request to the home directory.
    GetX,
    /// Directory forwards a read to the current owner.
    FwdGetS,
    /// Invalidation sent to a sharer.
    Inval,
    /// Invalidation acknowledgment.
    InvAck,
    /// Data reply (from memory, owner or directory).
    Data,
    /// Dirty-line writeback (eviction or checkpoint).
    Writeback,
    // --- Dependence-maintenance messages (Rebound extra) --------------
    /// "Are you the last writer?" query to the LW-ID processor when the
    /// data itself comes from elsewhere (§3.3.1: "the protocol still sends
    /// a message to the LW-ID processor").
    LwQuery,
    /// NO_WR reply after a WSIG membership miss (§3.3.2).
    NoWr,
    /// Positive acknowledgment of an [`MsgKind::LwQuery`].
    LwAck,
    // --- Checkpoint / rollback protocol messages (§3.3.4–3.3.5) -------
    /// Checkpoint request from a consumer ("CK?").
    CkRequest,
    /// Acknowledgment of a CK? to the requesting consumer.
    CkAck,
    /// Accept sent to the checkpoint initiator, carrying MyProducers.
    CkAccept,
    /// Decline sent to the initiator (stale info / already checkpointed).
    CkDecline,
    /// Busy reply (already participating in another checkpoint).
    CkBusy,
    /// Initiator releasing already-accepted participants after a Busy.
    CkRelease,
    /// Initiator's order to start writing back dirty lines.
    CkStartWb,
    /// Participant notifies the initiator its writebacks are done.
    CkWbDone,
    /// Initiator's order to resume execution / checkpoint complete.
    CkResume,
    /// Nack of an external checkpoint request while draining delayed
    /// writebacks (§4.1).
    CkNack,
    /// Barrier-optimization proactive checkpoint signal (§4.2.1).
    BarCk,
    /// Rollback request ("Roll?").
    RollRequest,
    /// Accept of a rollback request.
    RollAccept,
    /// Decline of a rollback request.
    RollDecline,
    /// Busy reply to a rollback request.
    RollBusy,
    /// Order to perform the rollback.
    RollStart,
    /// Completion notification of a local rollback.
    RollDone,
    /// Order to resume after a completed rollback.
    RollResume,
}

/// Coarse classification used for the Table 6.1 traffic row.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MsgClass {
    /// Regular directory-protocol traffic.
    Base,
    /// Extra traffic to maintain LW-ID and the Dep registers.
    DepMaintenance,
    /// Checkpoint/rollback software-protocol traffic (cross-processor
    /// interrupts and memory flags in the real system).
    Protocol,
}

impl MsgKind {
    /// The accounting class of this message kind.
    pub fn class(self) -> MsgClass {
        use MsgKind::*;
        match self {
            GetS | GetX | FwdGetS | Inval | InvAck | Data | Writeback => MsgClass::Base,
            LwQuery | NoWr | LwAck => MsgClass::DepMaintenance,
            _ => MsgClass::Protocol,
        }
    }
}

impl fmt::Display for MsgKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// Aggregate message counters by class.
///
/// # Example
///
/// ```
/// use rebound_coherence::{MsgKind, MsgStats};
///
/// let mut s = MsgStats::new();
/// s.record(MsgKind::GetS);
/// s.record(MsgKind::LwQuery);
/// assert_eq!(s.base.get(), 1);
/// assert_eq!(s.dep.get(), 1);
/// assert!((s.dep_overhead_percent() - 100.0).abs() < 1e-9);
/// ```
#[derive(Clone, Debug, Default)]
pub struct MsgStats {
    /// Baseline coherence messages.
    pub base: Counter,
    /// Dependence-maintenance messages (the Table 6.1 numerator).
    pub dep: Counter,
    /// Checkpoint/rollback protocol messages.
    pub protocol: Counter,
}

impl MsgStats {
    /// Creates zeroed counters.
    pub fn new() -> MsgStats {
        MsgStats::default()
    }

    /// Counts one message.
    #[inline]
    pub fn record(&mut self, kind: MsgKind) {
        match kind.class() {
            MsgClass::Base => self.base.incr(),
            MsgClass::DepMaintenance => self.dep.incr(),
            MsgClass::Protocol => self.protocol.incr(),
        }
    }

    /// Total messages of all classes.
    pub fn total(&self) -> u64 {
        self.base.get() + self.dep.get() + self.protocol.get()
    }

    /// Dependence-maintenance traffic as a percentage of baseline coherence
    /// traffic — the Table 6.1 "% Increase in coher. messages" row.
    pub fn dep_overhead_percent(&self) -> f64 {
        if self.base.get() == 0 {
            0.0
        } else {
            100.0 * self.dep.get() as f64 / self.base.get() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_are_assigned_correctly() {
        assert_eq!(MsgKind::GetS.class(), MsgClass::Base);
        assert_eq!(MsgKind::Writeback.class(), MsgClass::Base);
        assert_eq!(MsgKind::LwQuery.class(), MsgClass::DepMaintenance);
        assert_eq!(MsgKind::NoWr.class(), MsgClass::DepMaintenance);
        assert_eq!(MsgKind::LwAck.class(), MsgClass::DepMaintenance);
        assert_eq!(MsgKind::CkRequest.class(), MsgClass::Protocol);
        assert_eq!(MsgKind::RollDone.class(), MsgClass::Protocol);
        assert_eq!(MsgKind::BarCk.class(), MsgClass::Protocol);
    }

    #[test]
    fn stats_accumulate_by_class() {
        let mut s = MsgStats::new();
        for _ in 0..10 {
            s.record(MsgKind::GetS);
        }
        for _ in 0..3 {
            s.record(MsgKind::NoWr);
        }
        s.record(MsgKind::CkRequest);
        assert_eq!(s.base.get(), 10);
        assert_eq!(s.dep.get(), 3);
        assert_eq!(s.protocol.get(), 1);
        assert_eq!(s.total(), 14);
        assert!((s.dep_overhead_percent() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn overhead_percent_with_no_base_traffic_is_zero() {
        let mut s = MsgStats::new();
        s.record(MsgKind::LwQuery);
        assert_eq!(s.dep_overhead_percent(), 0.0);
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(MsgKind::GetS.to_string(), "GetS");
    }
}
