//! A bitmask over the processors of the chip.

use std::fmt;
use std::ops::{BitAnd, BitOr, BitOrAssign};

use rebound_engine::CoreId;

/// A set of processors, stored as a 64-bit mask.
///
/// The paper's `MyProducers` and `MyConsumers` Dep registers "have as many
/// bits as processors in the chip" (§3.3.1); the evaluated machine tops out
/// at 64 cores, so a single word suffices — exactly the hardware structure
/// being modelled.
///
/// # Example
///
/// ```
/// use rebound_coherence::CoreSet;
/// use rebound_engine::CoreId;
///
/// let mut s = CoreSet::new();
/// s.insert(CoreId(3));
/// s.insert(CoreId(5));
/// assert!(s.contains(CoreId(3)));
/// assert_eq!(s.len(), 2);
/// assert_eq!(s.iter().collect::<Vec<_>>(), vec![CoreId(3), CoreId(5)]);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct CoreSet(u64);

impl CoreSet {
    /// The maximum number of processors a `CoreSet` can represent.
    pub const MAX_CORES: usize = 64;

    /// Creates an empty set.
    pub fn new() -> CoreSet {
        CoreSet(0)
    }

    /// Creates a set holding exactly one processor.
    pub fn singleton(core: CoreId) -> CoreSet {
        let mut s = CoreSet::new();
        s.insert(core);
        s
    }

    /// Creates the full set of an `n`-processor machine.
    ///
    /// # Panics
    ///
    /// Panics if `n > 64`.
    pub fn all(n: usize) -> CoreSet {
        assert!(n <= Self::MAX_CORES, "at most {} cores", Self::MAX_CORES);
        if n == 64 {
            CoreSet(u64::MAX)
        } else {
            CoreSet((1u64 << n) - 1)
        }
    }

    /// Adds a processor. Returns whether it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if the core index is 64 or greater.
    #[inline]
    pub fn insert(&mut self, core: CoreId) -> bool {
        assert!(core.index() < Self::MAX_CORES);
        let bit = 1u64 << core.index();
        let new = self.0 & bit == 0;
        self.0 |= bit;
        new
    }

    /// Removes a processor. Returns whether it was present.
    #[inline]
    pub fn remove(&mut self, core: CoreId) -> bool {
        if core.index() >= Self::MAX_CORES {
            return false;
        }
        let bit = 1u64 << core.index();
        let had = self.0 & bit != 0;
        self.0 &= !bit;
        had
    }

    /// Whether the processor is in the set.
    #[inline]
    pub fn contains(self, core: CoreId) -> bool {
        core.index() < Self::MAX_CORES && self.0 & (1u64 << core.index()) != 0
    }

    /// Number of processors in the set.
    #[inline]
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Empties the set (what "clearing MyProducers/MyConsumers" does at a
    /// checkpoint, §3.3.1).
    #[inline]
    pub fn clear(&mut self) {
        self.0 = 0;
    }

    /// Set union, used e.g. to OR the `MyConsumers` of every rolled-back
    /// interval (§4.2, second event).
    #[inline]
    pub fn union(self, other: CoreSet) -> CoreSet {
        CoreSet(self.0 | other.0)
    }

    /// Set intersection.
    #[inline]
    pub fn intersection(self, other: CoreSet) -> CoreSet {
        CoreSet(self.0 & other.0)
    }

    /// Elements of `self` not in `other`.
    #[inline]
    pub fn difference(self, other: CoreSet) -> CoreSet {
        CoreSet(self.0 & !other.0)
    }

    /// Whether every element of `self` is in `other`.
    #[inline]
    pub fn is_subset(self, other: CoreSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// Iterates over members in increasing core-id order.
    pub fn iter(self) -> Iter {
        Iter(self.0)
    }

    /// The raw bitmask.
    pub fn bits(self) -> u64 {
        self.0
    }

    /// Constructs from a raw bitmask.
    pub fn from_bits(bits: u64) -> CoreSet {
        CoreSet(bits)
    }
}

/// Iterator over the members of a [`CoreSet`].
#[derive(Clone, Debug)]
pub struct Iter(u64);

impl Iterator for Iter {
    type Item = CoreId;

    fn next(&mut self) -> Option<CoreId> {
        if self.0 == 0 {
            None
        } else {
            let i = self.0.trailing_zeros() as usize;
            self.0 &= self.0 - 1;
            Some(CoreId(i))
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.0.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for Iter {}

impl IntoIterator for CoreSet {
    type Item = CoreId;
    type IntoIter = Iter;
    fn into_iter(self) -> Iter {
        self.iter()
    }
}

impl FromIterator<CoreId> for CoreSet {
    fn from_iter<I: IntoIterator<Item = CoreId>>(iter: I) -> CoreSet {
        let mut s = CoreSet::new();
        for c in iter {
            s.insert(c);
        }
        s
    }
}

impl Extend<CoreId> for CoreSet {
    fn extend<I: IntoIterator<Item = CoreId>>(&mut self, iter: I) {
        for c in iter {
            self.insert(c);
        }
    }
}

impl BitOr for CoreSet {
    type Output = CoreSet;
    fn bitor(self, rhs: CoreSet) -> CoreSet {
        self.union(rhs)
    }
}

impl BitOrAssign for CoreSet {
    fn bitor_assign(&mut self, rhs: CoreSet) {
        self.0 |= rhs.0;
    }
}

impl BitAnd for CoreSet {
    type Output = CoreSet;
    fn bitand(self, rhs: CoreSet) -> CoreSet {
        self.intersection(rhs)
    }
}

impl fmt::Display for CoreSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, c) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = CoreSet::new();
        assert!(s.insert(CoreId(7)));
        assert!(!s.insert(CoreId(7)));
        assert!(s.contains(CoreId(7)));
        assert!(s.remove(CoreId(7)));
        assert!(!s.remove(CoreId(7)));
        assert!(s.is_empty());
    }

    #[test]
    fn all_covers_exactly_n() {
        let s = CoreSet::all(5);
        assert_eq!(s.len(), 5);
        assert!(s.contains(CoreId(4)));
        assert!(!s.contains(CoreId(5)));
        assert_eq!(CoreSet::all(64).len(), 64);
        assert_eq!(CoreSet::all(0).len(), 0);
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn all_rejects_too_many() {
        CoreSet::all(65);
    }

    #[test]
    fn set_algebra() {
        let a: CoreSet = [CoreId(0), CoreId(1), CoreId(2)].into_iter().collect();
        let b: CoreSet = [CoreId(1), CoreId(2), CoreId(3)].into_iter().collect();
        assert_eq!(a.union(b).len(), 4);
        assert_eq!(a.intersection(b).len(), 2);
        assert_eq!(a.difference(b).iter().collect::<Vec<_>>(), vec![CoreId(0)]);
        assert!(a.intersection(b).is_subset(a));
        assert!(!a.is_subset(b));
        assert_eq!((a | b).len(), 4);
        assert_eq!((a & b).len(), 2);
    }

    #[test]
    fn iter_is_sorted_and_exact() {
        let s: CoreSet = [CoreId(9), CoreId(1), CoreId(33)].into_iter().collect();
        let v: Vec<_> = s.iter().collect();
        assert_eq!(v, vec![CoreId(1), CoreId(9), CoreId(33)]);
        assert_eq!(s.iter().len(), 3);
    }

    #[test]
    fn clear_empties() {
        let mut s = CoreSet::all(8);
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn singleton_and_bits_round_trip() {
        let s = CoreSet::singleton(CoreId(10));
        assert_eq!(s.bits(), 1 << 10);
        assert_eq!(CoreSet::from_bits(s.bits()), s);
    }

    #[test]
    fn extend_unions() {
        let mut s = CoreSet::singleton(CoreId(0));
        s.extend([CoreId(1), CoreId(2)]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn display_lists_members() {
        let s: CoreSet = [CoreId(2), CoreId(4)].into_iter().collect();
        assert_eq!(s.to_string(), "{P2,P4}");
        assert_eq!(CoreSet::new().to_string(), "{}");
    }
}
