//! A bitmask over the processors of the chip.

use std::fmt;
use std::ops::{BitAnd, BitOr, BitOrAssign};

use rebound_engine::CoreId;

/// Words backing a [`CoreSet`]; 16 × 64 bits = 1024 processors.
const WORDS: usize = 16;

/// A set of processors, stored as a fixed 1024-bit mask.
///
/// The paper's `MyProducers` and `MyConsumers` Dep registers "have as many
/// bits as processors in the chip" (§3.3.1). The paper evaluates up to 64
/// cores; the scale campaigns and throughput benches push the same machine
/// model to 1024, so the mask is sixteen words — still a plain `Copy`
/// register image, exactly the hardware structure being modelled.
///
/// # Example
///
/// ```
/// use rebound_coherence::CoreSet;
/// use rebound_engine::CoreId;
///
/// let mut s = CoreSet::new();
/// s.insert(CoreId(3));
/// s.insert(CoreId(200));
/// assert!(s.contains(CoreId(3)));
/// assert_eq!(s.len(), 2);
/// assert_eq!(s.iter().collect::<Vec<_>>(), vec![CoreId(3), CoreId(200)]);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct CoreSet([u64; WORDS]);

impl CoreSet {
    /// The maximum number of processors a `CoreSet` can represent.
    pub const MAX_CORES: usize = WORDS * 64;

    /// Creates an empty set.
    pub fn new() -> CoreSet {
        CoreSet([0; WORDS])
    }

    /// Creates a set holding exactly one processor.
    pub fn singleton(core: CoreId) -> CoreSet {
        let mut s = CoreSet::new();
        s.insert(core);
        s
    }

    /// Creates the full set of an `n`-processor machine.
    ///
    /// # Panics
    ///
    /// Panics if `n > 1024`.
    pub fn all(n: usize) -> CoreSet {
        assert!(n <= Self::MAX_CORES, "at most {} cores", Self::MAX_CORES);
        let mut words = [0u64; WORDS];
        for (w, word) in words.iter_mut().enumerate() {
            let lo = w * 64;
            if n >= lo + 64 {
                *word = u64::MAX;
            } else if n > lo {
                *word = (1u64 << (n - lo)) - 1;
            }
        }
        CoreSet(words)
    }

    /// Adds a processor. Returns whether it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if the core index is 1024 or greater.
    #[inline]
    pub fn insert(&mut self, core: CoreId) -> bool {
        assert!(core.index() < Self::MAX_CORES);
        let bit = 1u64 << (core.index() % 64);
        let word = &mut self.0[core.index() / 64];
        let new = *word & bit == 0;
        *word |= bit;
        new
    }

    /// Removes a processor. Returns whether it was present.
    #[inline]
    pub fn remove(&mut self, core: CoreId) -> bool {
        if core.index() >= Self::MAX_CORES {
            return false;
        }
        let bit = 1u64 << (core.index() % 64);
        let word = &mut self.0[core.index() / 64];
        let had = *word & bit != 0;
        *word &= !bit;
        had
    }

    /// Whether the processor is in the set.
    #[inline]
    pub fn contains(self, core: CoreId) -> bool {
        core.index() < Self::MAX_CORES
            && self.0[core.index() / 64] & (1u64 << (core.index() % 64)) != 0
    }

    /// Number of processors in the set.
    #[inline]
    pub fn len(self) -> usize {
        self.0.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == [0; WORDS]
    }

    /// Empties the set (what "clearing MyProducers/MyConsumers" does at a
    /// checkpoint, §3.3.1).
    #[inline]
    pub fn clear(&mut self) {
        self.0 = [0; WORDS];
    }

    /// Set union, used e.g. to OR the `MyConsumers` of every rolled-back
    /// interval (§4.2, second event).
    #[inline]
    pub fn union(self, other: CoreSet) -> CoreSet {
        let mut out = self.0;
        for (a, b) in out.iter_mut().zip(other.0) {
            *a |= b;
        }
        CoreSet(out)
    }

    /// Set intersection.
    #[inline]
    pub fn intersection(self, other: CoreSet) -> CoreSet {
        let mut out = self.0;
        for (a, b) in out.iter_mut().zip(other.0) {
            *a &= b;
        }
        CoreSet(out)
    }

    /// Elements of `self` not in `other`.
    #[inline]
    pub fn difference(self, other: CoreSet) -> CoreSet {
        let mut out = self.0;
        for (a, b) in out.iter_mut().zip(other.0) {
            *a &= !b;
        }
        CoreSet(out)
    }

    /// Whether every element of `self` is in `other`.
    #[inline]
    pub fn is_subset(self, other: CoreSet) -> bool {
        self.0.iter().zip(other.0).all(|(a, b)| a & !b == 0)
    }

    /// The highest-numbered member, if any.
    #[inline]
    pub fn max_member(self) -> Option<CoreId> {
        for w in (0..WORDS).rev() {
            if self.0[w] != 0 {
                return Some(CoreId(w * 64 + 63 - self.0[w].leading_zeros() as usize));
            }
        }
        None
    }

    /// Iterates over members in increasing core-id order.
    pub fn iter(self) -> Iter {
        Iter {
            words: self.0,
            word: 0,
        }
    }

    /// The low 64 bits of the mask (cores 0..64). Kept as the compact
    /// wire/debug form for machines within the paper's evaluated sizes;
    /// sets naming cores ≥ 64 need [`CoreSet::iter`].
    pub fn bits(self) -> u64 {
        self.0[0]
    }

    /// Constructs from a raw 64-bit mask over cores 0..64.
    pub fn from_bits(bits: u64) -> CoreSet {
        let mut words = [0u64; WORDS];
        words[0] = bits;
        CoreSet(words)
    }
}

/// Iterator over the members of a [`CoreSet`].
#[derive(Clone, Debug)]
pub struct Iter {
    words: [u64; WORDS],
    word: usize,
}

impl Iterator for Iter {
    type Item = CoreId;

    fn next(&mut self) -> Option<CoreId> {
        while self.word < WORDS {
            let w = &mut self.words[self.word];
            if *w == 0 {
                self.word += 1;
                continue;
            }
            let i = w.trailing_zeros() as usize;
            *w &= *w - 1;
            return Some(CoreId(self.word * 64 + i));
        }
        None
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n: usize = self.words[self.word.min(WORDS - 1)..]
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum();
        (n, Some(n))
    }
}

impl ExactSizeIterator for Iter {}

impl IntoIterator for CoreSet {
    type Item = CoreId;
    type IntoIter = Iter;
    fn into_iter(self) -> Iter {
        self.iter()
    }
}

impl FromIterator<CoreId> for CoreSet {
    fn from_iter<I: IntoIterator<Item = CoreId>>(iter: I) -> CoreSet {
        let mut s = CoreSet::new();
        for c in iter {
            s.insert(c);
        }
        s
    }
}

impl Extend<CoreId> for CoreSet {
    fn extend<I: IntoIterator<Item = CoreId>>(&mut self, iter: I) {
        for c in iter {
            self.insert(c);
        }
    }
}

impl BitOr for CoreSet {
    type Output = CoreSet;
    fn bitor(self, rhs: CoreSet) -> CoreSet {
        self.union(rhs)
    }
}

impl BitOrAssign for CoreSet {
    fn bitor_assign(&mut self, rhs: CoreSet) {
        *self = self.union(rhs);
    }
}

impl BitAnd for CoreSet {
    type Output = CoreSet;
    fn bitand(self, rhs: CoreSet) -> CoreSet {
        self.intersection(rhs)
    }
}

impl fmt::Display for CoreSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, c) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = CoreSet::new();
        assert!(s.insert(CoreId(7)));
        assert!(!s.insert(CoreId(7)));
        assert!(s.contains(CoreId(7)));
        assert!(s.remove(CoreId(7)));
        assert!(!s.remove(CoreId(7)));
        assert!(s.is_empty());
    }

    #[test]
    fn all_covers_exactly_n() {
        let s = CoreSet::all(5);
        assert_eq!(s.len(), 5);
        assert!(s.contains(CoreId(4)));
        assert!(!s.contains(CoreId(5)));
        assert_eq!(CoreSet::all(64).len(), 64);
        assert_eq!(CoreSet::all(0).len(), 0);
        // Word-boundary sizes of the widened mask.
        assert_eq!(CoreSet::all(65).len(), 65);
        assert_eq!(CoreSet::all(256).len(), 256);
        assert!(CoreSet::all(256).contains(CoreId(255)));
        assert_eq!(CoreSet::all(1024).len(), 1024);
        assert!(CoreSet::all(1024).contains(CoreId(1023)));
        assert!(CoreSet::all(257).contains(CoreId(256)));
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn all_rejects_too_many() {
        CoreSet::all(1025);
    }

    #[test]
    fn set_algebra() {
        let a: CoreSet = [CoreId(0), CoreId(1), CoreId(2)].into_iter().collect();
        let b: CoreSet = [CoreId(1), CoreId(2), CoreId(3)].into_iter().collect();
        assert_eq!(a.union(b).len(), 4);
        assert_eq!(a.intersection(b).len(), 2);
        assert_eq!(a.difference(b).iter().collect::<Vec<_>>(), vec![CoreId(0)]);
        assert!(a.intersection(b).is_subset(a));
        assert!(!a.is_subset(b));
        assert_eq!((a | b).len(), 4);
        assert_eq!((a & b).len(), 2);
    }

    #[test]
    fn algebra_crosses_word_boundaries() {
        let a: CoreSet = [CoreId(3), CoreId(70), CoreId(130), CoreId(255)]
            .into_iter()
            .collect();
        let b: CoreSet = [CoreId(70), CoreId(255)].into_iter().collect();
        assert!(b.is_subset(a));
        assert_eq!(a.intersection(b), b);
        assert_eq!(
            a.difference(b).iter().collect::<Vec<_>>(),
            vec![CoreId(3), CoreId(130)]
        );
        assert_eq!(a.union(b).len(), 4);
    }

    #[test]
    fn iter_is_sorted_and_exact() {
        let s: CoreSet = [CoreId(9), CoreId(1), CoreId(33)].into_iter().collect();
        let v: Vec<_> = s.iter().collect();
        assert_eq!(v, vec![CoreId(1), CoreId(9), CoreId(33)]);
        assert_eq!(s.iter().len(), 3);
    }

    #[test]
    fn iter_crosses_word_boundaries_in_order() {
        let s: CoreSet = [CoreId(200), CoreId(63), CoreId(64), CoreId(128)]
            .into_iter()
            .collect();
        let v: Vec<_> = s.iter().map(|c| c.index()).collect();
        assert_eq!(v, vec![63, 64, 128, 200]);
        assert_eq!(s.iter().len(), 4);
    }

    #[test]
    fn max_member_scans_high_words() {
        assert_eq!(CoreSet::new().max_member(), None);
        assert_eq!(CoreSet::singleton(CoreId(0)).max_member(), Some(CoreId(0)));
        let s: CoreSet = [CoreId(3), CoreId(59), CoreId(60), CoreId(900)]
            .into_iter()
            .collect();
        assert_eq!(s.max_member(), Some(CoreId(900)));
        assert_eq!(CoreSet::all(61).max_member(), Some(CoreId(60)));
    }

    #[test]
    fn clear_empties() {
        let mut s = CoreSet::all(8);
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn singleton_and_bits_round_trip() {
        let s = CoreSet::singleton(CoreId(10));
        assert_eq!(s.bits(), 1 << 10);
        assert_eq!(CoreSet::from_bits(s.bits()), s);
    }

    #[test]
    fn extend_unions() {
        let mut s = CoreSet::singleton(CoreId(0));
        s.extend([CoreId(1), CoreId(2)]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn display_lists_members() {
        let s: CoreSet = [CoreId(2), CoreId(4)].into_iter().collect();
        assert_eq!(s.to_string(), "{P2,P4}");
        assert_eq!(CoreSet::new().to_string(), "{}");
    }
}
