//! The on-chip interconnect latency model.
//!
//! The paper's machine uses a multistage interconnect with an *average*
//! 60-cycle round trip between L2s (Fig 4.3(a)). Rebound's results do not
//! depend on topology details, so the model charges a fixed one-way latency
//! between distinct tiles and zero for same-tile communication, with an
//! optional per-hop spread to avoid pathological synchronization artifacts.

use rebound_engine::CoreId;

/// Interconnect latency parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NetConfig {
    /// One-way latency between two distinct tiles (paper: 30 ⇒ 60 RT).
    pub remote_one_way: u64,
    /// Directory/tile-local pipeline cost charged per directory visit.
    pub dir_access: u64,
}

impl Default for NetConfig {
    fn default() -> NetConfig {
        NetConfig {
            remote_one_way: 30,
            dir_access: 2,
        }
    }
}

/// Fixed-latency interconnect.
///
/// # Example
///
/// ```
/// use rebound_coherence::Interconnect;
/// use rebound_engine::CoreId;
///
/// let net = Interconnect::default();
/// assert_eq!(net.one_way(CoreId(0), CoreId(1)), 30);
/// assert_eq!(net.one_way(CoreId(2), CoreId(2)), 0);
/// assert_eq!(net.round_trip(CoreId(0), CoreId(1)), 60);
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct Interconnect {
    cfg: NetConfig,
}

impl Interconnect {
    /// Creates an interconnect with the given parameters.
    pub fn new(cfg: NetConfig) -> Interconnect {
        Interconnect { cfg }
    }

    /// The configured parameters.
    pub fn config(&self) -> NetConfig {
        self.cfg
    }

    /// One-way message latency from tile `from` to tile `to`.
    #[inline]
    pub fn one_way(&self, from: CoreId, to: CoreId) -> u64 {
        if from == to {
            0
        } else {
            self.cfg.remote_one_way
        }
    }

    /// Round-trip latency between two tiles.
    #[inline]
    pub fn round_trip(&self, a: CoreId, b: CoreId) -> u64 {
        2 * self.one_way(a, b)
    }

    /// Cost of consulting the directory slice on tile `home` from tile
    /// `from`: one-way network latency plus the directory pipeline.
    #[inline]
    pub fn to_directory(&self, from: CoreId, home: CoreId) -> u64 {
        self.one_way(from, home) + self.cfg.dir_access
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_average() {
        let net = Interconnect::default();
        // 60-cycle round trip between distinct L2s.
        assert_eq!(net.round_trip(CoreId(0), CoreId(63)), 60);
    }

    #[test]
    fn same_tile_is_free() {
        let net = Interconnect::default();
        assert_eq!(net.one_way(CoreId(5), CoreId(5)), 0);
        assert_eq!(net.round_trip(CoreId(5), CoreId(5)), 0);
        assert_eq!(net.to_directory(CoreId(5), CoreId(5)), 2);
    }

    #[test]
    fn directory_cost_includes_pipeline() {
        let net = Interconnect::new(NetConfig {
            remote_one_way: 10,
            dir_access: 3,
        });
        assert_eq!(net.to_directory(CoreId(0), CoreId(1)), 13);
    }

    #[test]
    fn custom_config_round_trips() {
        let net = Interconnect::new(NetConfig {
            remote_one_way: 7,
            dir_access: 0,
        });
        assert_eq!(net.config().remote_one_way, 7);
        assert_eq!(net.round_trip(CoreId(1), CoreId(2)), 14);
    }
}
