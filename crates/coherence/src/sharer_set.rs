//! Compact adaptive sharer sets: the directory's hot representation.
//!
//! PR 6 widened [`CoreSet`] to 1024 bits so the scale campaigns could run,
//! which tripled the directory footprint and made the simulator
//! host-cache-miss bound — while the overwhelmingly common case in our own
//! traces is a line with ≤2 sharers. The paper motivates the adaptive shape
//! (§8: at scale "the directory may have pointers to groups of
//! processors"); [`SharerSet`] realises it *exactly* — no precision is
//! traded, unlike the §8 [`crate::SharerVector`] organizations.
//!
//! A `SharerSet` is a single tagged 64-bit word; the top four bits hold the
//! kind `K`:
//!
//! ```text
//! 63  60 59                                                    0
//! ┌────┬─────────────────────────────────────────────────────────┐
//! │K=0…5│  K sorted 12-bit core ids at bit offsets 0,12,24,36,48 │ inline
//! ├────┼─────────────────────────────────────────────────────────┤
//! │K=6 │  presence mask, one bit per core, cores 0..60           │ mask
//! ├────┼─────────────────────────────────────────────────────────┤
//! │K=7 │  spill-arena slot index (low 32 bits)                   │ spill
//! └────┴─────────────────────────────────────────────────────────┘
//! ```
//!
//! * **Inline** (`K ≤ 5`): up to five exact pointers, kept sorted so
//!   iteration order matches `CoreSet`'s ascending order bit-for-bit. The
//!   empty set is the all-zero word, so `Default` is free.
//! * **Mask** (`K = 6`): a sixth sharer whose members all fit below core 60
//!   becomes a plain presence mask. (A 64-bit mask plus a tag cannot fit in
//!   one word, so the mask covers cores 0..60 — machines ≤64 cores with a
//!   dense line whose sharers include core 60..64 take the spill path; such
//!   lines are rare and the spill is still exact.)
//! * **Spill** (`K = 7`): everything else — more than five sharers naming a
//!   core ≥ 60 — lives as a full `[u64; 16]` `CoreSet` in a side
//!   [`SharerArena`], addressed by slot index. The slot is freed the moment
//!   the set shrinks back into an inline or mask encoding, so a transient
//!   all-cores burst does not permanently pin 128 bytes per line.
//!
//! The representation is **canonical**: a set of ≤5 members is always
//! inline, a set of ≥6 members all below core 60 is always a mask, and only
//! the remainder spills. Canonical form is what makes the encoding
//! invisible — iteration order, membership and length are identical to
//! `CoreSet` in every state, which the `sharer_set_props` proptest checks
//! against a `BTreeSet` reference and the campaign CSV byte-identity
//! checks confirm end to end.
//!
//! Ownership discipline: a spill-mode `SharerSet` is an index-sized handle
//! into its arena, and the holder is the *unique owner* of that slot.
//! `SharerSet` is `Copy` for the benefit of by-value reads (directory entry
//! views), but duplicating a handle and mutating both copies is a logic
//! error — the directory stores exactly one handle per line.

use std::fmt;

use rebound_engine::CoreId;

use crate::coreset::{self, CoreSet};

/// Kind field shift/values.
const KIND_SHIFT: u32 = 60;
const K_MASK_MODE: u64 = 6;
const K_SPILL: u64 = 7;
/// Inline pointer width. 12 bits per id (1024 cores need 10; the slack
/// keeps the arithmetic byte-aligned and leaves headroom).
const ID_BITS: u32 = 12;
const ID_MASK: u64 = (1 << ID_BITS) - 1;
/// Everything below the kind field.
const PAYLOAD_MASK: u64 = (1 << KIND_SHIFT) - 1;

/// An exact, adaptive set of sharer core ids. See the module docs for the
/// encoding. All operations that may touch the spill plane take the owning
/// [`SharerArena`].
#[derive(Clone, Copy, Debug, Default)]
pub struct SharerSet(u64);

/// Side storage for spilled [`SharerSet`]s: full 1024-bit masks addressed
/// by slot index, with a free list so shrunken sets return their slot.
#[derive(Clone, Debug, Default)]
pub struct SharerArena {
    slots: Vec<CoreSet>,
    free: Vec<u32>,
}

/// Which encoding a [`SharerSet`] currently uses (diagnostics/tests).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SharerRepr {
    /// Up to five exact inline pointers (the count is the member count).
    Inline(usize),
    /// Presence mask over cores `0..60`.
    Mask,
    /// Full `CoreSet` in the arena.
    Spill,
}

impl SharerSet {
    /// Largest member count the inline encoding holds.
    pub const INLINE_MAX: usize = 5;
    /// Number of cores the single-word mask encoding covers.
    pub const MASK_BITS: usize = KIND_SHIFT as usize;

    /// Creates an empty set.
    pub const fn new() -> SharerSet {
        SharerSet(0)
    }

    #[inline]
    fn kind(self) -> u64 {
        self.0 >> KIND_SHIFT
    }

    #[inline]
    fn slot(self) -> u32 {
        debug_assert_eq!(self.kind(), K_SPILL);
        self.0 as u32
    }

    /// The inline members (valid only when `kind() <= INLINE_MAX`).
    #[inline]
    fn inline_ids(self) -> ([u16; Self::INLINE_MAX], usize) {
        let n = self.kind() as usize;
        debug_assert!(n <= Self::INLINE_MAX);
        let mut ids = [0u16; Self::INLINE_MAX];
        for (i, id) in ids.iter_mut().enumerate().take(n) {
            *id = ((self.0 >> (i as u32 * ID_BITS)) & ID_MASK) as u16;
        }
        (ids, n)
    }

    #[inline]
    fn from_inline(ids: &[u16]) -> SharerSet {
        debug_assert!(ids.len() <= Self::INLINE_MAX);
        debug_assert!(ids.windows(2).all(|w| w[0] < w[1]), "sorted, distinct");
        let mut word = (ids.len() as u64) << KIND_SHIFT;
        for (i, &id) in ids.iter().enumerate() {
            word |= u64::from(id) << (i as u32 * ID_BITS);
        }
        SharerSet(word)
    }

    /// Rebuilds the canonical encoding for an arbitrary member set,
    /// allocating a spill slot when needed. `self` must not currently own
    /// a slot.
    fn encode(set: CoreSet, arena: &mut SharerArena) -> SharerSet {
        let len = set.len();
        if len <= Self::INLINE_MAX {
            let mut ids = [0u16; Self::INLINE_MAX];
            for (slot, c) in ids.iter_mut().zip(set.iter()) {
                *slot = c.index() as u16;
            }
            return Self::from_inline(&ids[..len]);
        }
        match set.max_member() {
            Some(m) if m.index() < Self::MASK_BITS => {
                SharerSet((K_MASK_MODE << KIND_SHIFT) | set.bits())
            }
            _ => SharerSet((K_SPILL << KIND_SHIFT) | u64::from(arena.alloc(set))),
        }
    }

    /// Builds a set with the members of `src` (canonical encoding).
    pub fn from_coreset(src: CoreSet, arena: &mut SharerArena) -> SharerSet {
        Self::encode(src, arena)
    }

    /// The current encoding (diagnostics/tests).
    pub fn repr(self) -> SharerRepr {
        match self.kind() {
            K_MASK_MODE => SharerRepr::Mask,
            K_SPILL => SharerRepr::Spill,
            n => SharerRepr::Inline(n as usize),
        }
    }

    /// Adds a core. Returns whether it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if the core index is [`CoreSet::MAX_CORES`] or greater.
    #[inline]
    pub fn insert(&mut self, core: CoreId, arena: &mut SharerArena) -> bool {
        let c = core.index();
        assert!(c < CoreSet::MAX_CORES);
        match self.kind() {
            K_MASK_MODE => {
                if c < Self::MASK_BITS {
                    let bit = 1u64 << c;
                    if self.0 & bit != 0 {
                        return false;
                    }
                    self.0 |= bit;
                } else {
                    // A member ≥ 60 ends mask mode: spill the full set.
                    let mut full = CoreSet::from_bits(self.0 & PAYLOAD_MASK);
                    full.insert(core);
                    *self = Self::encode(full, arena);
                }
                true
            }
            K_SPILL => arena.get_mut(self.slot()).insert(core),
            _ => {
                let (ids, n) = self.inline_ids();
                let mut buf = [0u16; Self::INLINE_MAX + 1];
                buf[..n].copy_from_slice(&ids[..n]);
                if buf[..n].contains(&(c as u16)) {
                    return false;
                }
                buf[n] = c as u16;
                buf[..=n].sort_unstable();
                if n < Self::INLINE_MAX {
                    *self = Self::from_inline(&buf[..=n]);
                } else {
                    // Sixth member: leave the inline encoding.
                    if usize::from(buf[Self::INLINE_MAX]) < Self::MASK_BITS {
                        let mut mask = K_MASK_MODE << KIND_SHIFT;
                        for &id in &buf {
                            mask |= 1u64 << id;
                        }
                        self.0 = mask;
                    } else {
                        let full: CoreSet = buf.iter().map(|&id| CoreId(usize::from(id))).collect();
                        self.0 = (K_SPILL << KIND_SHIFT) | u64::from(arena.alloc(full));
                    }
                }
                true
            }
        }
    }

    /// Removes a core, demoting the encoding (and freeing a spill slot)
    /// when the set shrinks back below a boundary. Returns whether it was
    /// present.
    #[inline]
    pub fn remove(&mut self, core: CoreId, arena: &mut SharerArena) -> bool {
        let c = core.index();
        match self.kind() {
            K_MASK_MODE => {
                if c >= Self::MASK_BITS || self.0 & (1u64 << c) == 0 {
                    return false;
                }
                self.0 &= !(1u64 << c);
                let payload = self.0 & PAYLOAD_MASK;
                if payload.count_ones() as usize <= Self::INLINE_MAX {
                    *self = Self::encode(CoreSet::from_bits(payload), arena);
                }
                true
            }
            K_SPILL => {
                let slot = self.slot();
                let set = arena.get_mut(slot);
                if !set.remove(core) {
                    return false;
                }
                let still_wide = set
                    .max_member()
                    .is_some_and(|m| m.index() >= Self::MASK_BITS);
                if set.len() > Self::INLINE_MAX && still_wide {
                    return true; // stays spilled
                }
                let demoted = *set;
                arena.release(slot);
                *self = Self::encode(demoted, arena);
                true
            }
            _ => {
                let (mut ids, n) = self.inline_ids();
                let Some(pos) = ids[..n].iter().position(|&id| usize::from(id) == c) else {
                    return false;
                };
                ids.copy_within(pos + 1..n, pos);
                *self = Self::from_inline(&ids[..n - 1]);
                true
            }
        }
    }

    /// Whether the core is in the set.
    #[inline]
    pub fn contains(self, core: CoreId, arena: &SharerArena) -> bool {
        let c = core.index();
        match self.kind() {
            K_MASK_MODE => c < Self::MASK_BITS && self.0 & (1u64 << c) != 0,
            K_SPILL => arena.get(self.slot()).contains(core),
            _ => {
                let (ids, n) = self.inline_ids();
                ids[..n].contains(&(c as u16))
            }
        }
    }

    /// Number of members.
    #[inline]
    pub fn len(self, arena: &SharerArena) -> usize {
        match self.kind() {
            K_MASK_MODE => (self.0 & PAYLOAD_MASK).count_ones() as usize,
            K_SPILL => arena.get(self.slot()).len(),
            n => n as usize,
        }
    }

    /// Whether the set is empty. Needs no arena: canonical form keeps
    /// every non-empty set out of the all-zero word (mask and spill modes
    /// always hold ≥ 6 members).
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Empties the set, returning any spill slot to the arena.
    #[inline]
    pub fn clear(&mut self, arena: &mut SharerArena) {
        if self.kind() == K_SPILL {
            arena.release(self.slot());
        }
        self.0 = 0;
    }

    /// Inserts every member of `src`.
    pub fn extend_from(&mut self, src: CoreSet, arena: &mut SharerArena) {
        if self.kind() == K_SPILL {
            let slot = self.slot();
            *arena.get_mut(slot) |= src;
            return;
        }
        if src.is_empty() {
            return;
        }
        let merged = self.to_coreset(arena).union(src);
        // Not currently spilled, so there is no slot to release.
        *self = Self::encode(merged, arena);
    }

    /// The members as a plain [`CoreSet`] value.
    #[inline]
    pub fn to_coreset(self, arena: &SharerArena) -> CoreSet {
        match self.kind() {
            K_MASK_MODE => CoreSet::from_bits(self.0 & PAYLOAD_MASK),
            K_SPILL => *arena.get(self.slot()),
            _ => {
                let (ids, n) = self.inline_ids();
                ids[..n].iter().map(|&id| CoreId(usize::from(id))).collect()
            }
        }
    }

    /// Iterates over members in increasing core-id order — the same order
    /// as [`CoreSet::iter`], in every encoding. The iterator owns its data
    /// (a spilled set is copied out once), so it does not borrow the
    /// arena.
    #[inline]
    pub fn iter(self, arena: &SharerArena) -> Iter {
        Iter(match self.kind() {
            K_MASK_MODE => IterInner::Mask {
                bits: self.0 & PAYLOAD_MASK,
            },
            K_SPILL => IterInner::Spill(arena.get(self.slot()).iter()),
            _ => {
                let (ids, n) = self.inline_ids();
                IterInner::Inline {
                    ids,
                    n: n as u8,
                    pos: 0,
                }
            }
        })
    }
}

/// Iterator over the members of a [`SharerSet`], ascending.
#[derive(Clone, Debug)]
pub struct Iter(IterInner);

#[derive(Clone, Debug)]
enum IterInner {
    Inline {
        ids: [u16; SharerSet::INLINE_MAX],
        n: u8,
        pos: u8,
    },
    Mask {
        bits: u64,
    },
    Spill(coreset::Iter),
}

impl Iterator for Iter {
    type Item = CoreId;

    #[inline]
    fn next(&mut self) -> Option<CoreId> {
        match &mut self.0 {
            IterInner::Inline { ids, n, pos } => {
                if pos < n {
                    let id = ids[usize::from(*pos)];
                    *pos += 1;
                    Some(CoreId(usize::from(id)))
                } else {
                    None
                }
            }
            IterInner::Mask { bits } => {
                if *bits == 0 {
                    None
                } else {
                    let i = bits.trailing_zeros() as usize;
                    *bits &= *bits - 1;
                    Some(CoreId(i))
                }
            }
            IterInner::Spill(it) => it.next(),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = match &self.0 {
            IterInner::Inline { n, pos, .. } => usize::from(*n - *pos),
            IterInner::Mask { bits } => bits.count_ones() as usize,
            IterInner::Spill(it) => it.len(),
        };
        (n, Some(n))
    }
}

impl ExactSizeIterator for Iter {}

impl SharerArena {
    /// Creates an empty arena.
    pub fn new() -> SharerArena {
        SharerArena::default()
    }

    /// Spilled sets currently live (slots in use).
    pub fn live(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// Slots ever allocated (high-water mark; freed slots are reused
    /// before the arena grows).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Bytes resident in the arena's backing storage.
    pub fn resident_bytes(&self) -> usize {
        self.slots.capacity() * std::mem::size_of::<CoreSet>()
            + self.free.capacity() * std::mem::size_of::<u32>()
    }

    fn alloc(&mut self, set: CoreSet) -> u32 {
        if let Some(slot) = self.free.pop() {
            self.slots[slot as usize] = set;
            slot
        } else {
            let slot = u32::try_from(self.slots.len()).expect("arena slot index fits u32");
            self.slots.push(set);
            slot
        }
    }

    fn release(&mut self, slot: u32) {
        self.slots[slot as usize] = CoreSet::new();
        self.free.push(slot);
    }

    #[inline]
    fn get(&self, slot: u32) -> &CoreSet {
        &self.slots[slot as usize]
    }

    #[inline]
    fn get_mut(&mut self, slot: u32) -> &mut CoreSet {
        &mut self.slots[slot as usize]
    }
}

impl fmt::Display for SharerSet {
    /// Needs no arena only because spilled sets print as `{spill:N}`;
    /// use [`SharerSet::to_coreset`] for a member listing.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.repr() {
            SharerRepr::Spill => write!(f, "{{spill:{}}}", self.slot()),
            _ => {
                // Inline and mask payloads are self-contained.
                let arena = SharerArena::new();
                write!(f, "{}", self.to_coreset(&arena))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(set: SharerSet, arena: &SharerArena) -> Vec<usize> {
        set.iter(arena).map(|c| c.index()).collect()
    }

    #[test]
    fn empty_is_zero_word() {
        let s = SharerSet::new();
        assert!(s.is_empty());
        assert_eq!(s.repr(), SharerRepr::Inline(0));
        assert_eq!(SharerSet::default().0, 0);
    }

    #[test]
    fn inline_inserts_stay_sorted() {
        let mut arena = SharerArena::new();
        let mut s = SharerSet::new();
        for c in [900, 3, 60, 59, 1023] {
            assert!(s.insert(CoreId(c), &mut arena));
            assert!(!s.insert(CoreId(c), &mut arena), "duplicate insert");
        }
        assert_eq!(s.repr(), SharerRepr::Inline(5));
        assert_eq!(ids(s, &arena), vec![3, 59, 60, 900, 1023]);
        assert_eq!(s.len(&arena), 5);
        assert!(s.contains(CoreId(900), &arena));
        assert!(!s.contains(CoreId(4), &arena));
        assert_eq!(arena.live(), 0, "inline sets never touch the arena");
    }

    #[test]
    fn sixth_low_member_promotes_to_mask() {
        let mut arena = SharerArena::new();
        let mut s = SharerSet::new();
        for c in 0..6 {
            s.insert(CoreId(c * 9), &mut arena); // 0,9,...,45 — all < 60
        }
        assert_eq!(s.repr(), SharerRepr::Mask);
        assert_eq!(s.len(&arena), 6);
        assert_eq!(ids(s, &arena), vec![0, 9, 18, 27, 36, 45]);
        assert_eq!(arena.live(), 0);
        // Mask keeps absorbing low cores without spilling.
        assert!(s.insert(CoreId(59), &mut arena));
        assert_eq!(s.repr(), SharerRepr::Mask);
    }

    #[test]
    fn sixth_high_member_spills() {
        let mut arena = SharerArena::new();
        let mut s = SharerSet::new();
        for c in [0, 1, 2, 3, 4, 60] {
            s.insert(CoreId(c), &mut arena);
        }
        assert_eq!(s.repr(), SharerRepr::Spill);
        assert_eq!(arena.live(), 1);
        assert_eq!(ids(s, &arena), vec![0, 1, 2, 3, 4, 60]);
    }

    #[test]
    fn mask_promotes_to_spill_on_high_member() {
        let mut arena = SharerArena::new();
        let mut s = SharerSet::new();
        for c in 0..8 {
            s.insert(CoreId(c), &mut arena);
        }
        assert_eq!(s.repr(), SharerRepr::Mask);
        assert!(s.insert(CoreId(777), &mut arena));
        assert_eq!(s.repr(), SharerRepr::Spill);
        assert_eq!(s.len(&arena), 9);
        assert_eq!(ids(s, &arena), vec![0, 1, 2, 3, 4, 5, 6, 7, 777]);
    }

    #[test]
    fn removal_demotes_mask_to_inline() {
        let mut arena = SharerArena::new();
        let mut s = SharerSet::new();
        for c in 0..6 {
            s.insert(CoreId(c), &mut arena);
        }
        assert_eq!(s.repr(), SharerRepr::Mask);
        assert!(s.remove(CoreId(2), &mut arena));
        assert_eq!(s.repr(), SharerRepr::Inline(5));
        assert_eq!(ids(s, &arena), vec![0, 1, 3, 4, 5]);
        assert!(!s.remove(CoreId(2), &mut arena));
    }

    #[test]
    fn removal_demotes_spill_to_mask_and_frees_the_slot() {
        let mut arena = SharerArena::new();
        let mut s = SharerSet::new();
        for c in [0, 1, 2, 3, 4, 5, 100] {
            s.insert(CoreId(c), &mut arena);
        }
        assert_eq!((s.repr(), arena.live()), (SharerRepr::Spill, 1));
        // Dropping the wide member leaves 6 members all < 60: mask.
        assert!(s.remove(CoreId(100), &mut arena));
        assert_eq!((s.repr(), arena.live()), (SharerRepr::Mask, 0));
        assert_eq!(ids(s, &arena), vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn removal_demotes_spill_straight_to_inline() {
        let mut arena = SharerArena::new();
        let mut s = SharerSet::new();
        for c in [7, 8, 9, 10, 11, 500] {
            s.insert(CoreId(c), &mut arena);
        }
        assert_eq!(s.repr(), SharerRepr::Spill);
        // 5 members remain (one of them ≥ 60): inline, slot freed.
        assert!(s.remove(CoreId(9), &mut arena));
        assert_eq!((s.repr(), arena.live()), (SharerRepr::Inline(5), 0));
        assert_eq!(ids(s, &arena), vec![7, 8, 10, 11, 500]);
    }

    #[test]
    fn clear_frees_the_spill_slot() {
        let mut arena = SharerArena::new();
        let mut s = SharerSet::from_coreset(CoreSet::all(200), &mut arena);
        assert_eq!((s.repr(), arena.live()), (SharerRepr::Spill, 1));
        s.clear(&mut arena);
        assert!(s.is_empty());
        assert_eq!(arena.live(), 0);
        assert_eq!(arena.capacity(), 1, "slot stays allocated for reuse");
    }

    #[test]
    fn freed_slots_are_reused() {
        let mut arena = SharerArena::new();
        let mut a = SharerSet::from_coreset(CoreSet::all(100), &mut arena);
        a.clear(&mut arena);
        let b = SharerSet::from_coreset(CoreSet::all(101), &mut arena);
        assert_eq!(arena.capacity(), 1, "the freed slot is reused");
        assert_eq!(b.len(&arena), 101);
    }

    #[test]
    fn from_coreset_picks_the_canonical_encoding() {
        let mut arena = SharerArena::new();
        let empty = SharerSet::from_coreset(CoreSet::new(), &mut arena);
        assert!(empty.is_empty());
        let small = SharerSet::from_coreset(CoreSet::all(4), &mut arena);
        assert_eq!(small.repr(), SharerRepr::Inline(4));
        let mask = SharerSet::from_coreset(CoreSet::all(32), &mut arena);
        assert_eq!(mask.repr(), SharerRepr::Mask);
        let wide = SharerSet::from_coreset(CoreSet::all(64), &mut arena);
        assert_eq!(wide.repr(), SharerRepr::Spill);
        assert_eq!(wide.to_coreset(&arena), CoreSet::all(64));
    }

    #[test]
    fn extend_from_unions() {
        let mut arena = SharerArena::new();
        let mut s = SharerSet::new();
        s.insert(CoreId(2), &mut arena);
        s.extend_from(CoreSet::all(3), &mut arena);
        assert_eq!(ids(s, &arena), vec![0, 1, 2]);
        s.extend_from(CoreSet::all(70), &mut arena);
        assert_eq!(s.repr(), SharerRepr::Spill);
        assert_eq!(s.len(&arena), 70);
        s.extend_from(CoreSet::singleton(CoreId(1000)), &mut arena);
        assert_eq!(s.len(&arena), 71);
        assert_eq!(arena.live(), 1, "in-place spill union allocates nothing");
    }

    #[test]
    fn to_coreset_round_trips_every_encoding() {
        let mut arena = SharerArena::new();
        for n in [0usize, 1, 5, 6, 59, 60, 61, 1024] {
            let src = CoreSet::all(n);
            let s = SharerSet::from_coreset(src, &mut arena);
            assert_eq!(s.to_coreset(&arena), src, "n={n}");
            assert_eq!(s.len(&arena), n);
        }
    }

    #[test]
    fn display_inline_and_mask() {
        let mut arena = SharerArena::new();
        let mut s = SharerSet::new();
        s.insert(CoreId(2), &mut arena);
        s.insert(CoreId(4), &mut arena);
        assert_eq!(s.to_string(), "{P2,P4}");
        assert_eq!(SharerSet::new().to_string(), "{}");
    }
}
