//! The full-map directory, extended with Rebound's LW-ID field.
//!
//! The hot plane is deliberately tiny: one 16-byte packed entry per
//! line — a tagged meta word holding `owner`/`dirty`/`lw_id` beside a
//! compact adaptive [`SharerSet`] — with the rare dense sharer lists
//! spilled to a side [`SharerArena`]. Callers never see the packing:
//! [`Directory::entry`] hands out a borrowed read view ([`EntryRef`]) and
//! [`Directory::entry_mut`] a borrowed write view ([`EntryMut`]), so no
//! 128-byte mask is ever copied on the access path.

use rebound_engine::{CoreId, LineId};

use crate::coreset::CoreSet;
use crate::sharer_set::{self, SharerArena, SharerSet};

/// `owner`/`lw_id` are 16-bit fields in the meta word; this sentinel is
/// "no processor" (core ids are bounded by [`CoreSet::MAX_CORES`] = 1024).
const PID_NONE: u64 = 0xFFFF;
const OWNER_SHIFT: u32 = 0;
const LWID_SHIFT: u32 = 16;
const DIRTY_BIT: u64 = 1 << 32;

/// Directory state for one memory line, packed into 16 bytes.
///
/// A standard full-map MESI directory entry (sharer list + owner + Dirty
/// bit), augmented with the paper's **Last Writer ID**: "each entry in the
/// directory module is augmented with a processor ID field called Last
/// Writer ID (LW-ID)" (§3.3). Crucially, LW-ID is *not* cleared when the
/// line is displaced from the writer's cache, nor when the writer
/// checkpoints — it is allowed to go stale (§3.3.2) and is lazily corrected
/// by `NO_WR` replies after a WSIG membership miss.
///
/// Layout: `meta` packs `owner` (bits 0..16, [`PID_NONE`] = none), `lw_id`
/// (bits 16..32, same sentinel) and the Dirty bit (bit 32); `sharers` is
/// the compact adaptive set. Interpreting `sharers` requires the owning
/// directory's arena, which is why this type is crate-private and access
/// goes through [`EntryRef`]/[`EntryMut`].
#[derive(Clone, Copy, Debug)]
pub(crate) struct PackedEntry {
    meta: u64,
    sharers: SharerSet,
}

impl PackedEntry {
    const EMPTY: PackedEntry = PackedEntry {
        meta: (PID_NONE << OWNER_SHIFT) | (PID_NONE << LWID_SHIFT),
        sharers: SharerSet::new(),
    };

    #[inline]
    fn pid(self, shift: u32) -> Option<CoreId> {
        let raw = (self.meta >> shift) & 0xFFFF;
        (raw != PID_NONE).then_some(CoreId(raw as usize))
    }

    #[inline]
    fn set_pid(&mut self, shift: u32, pid: Option<CoreId>) {
        let raw = pid.map_or(PID_NONE, |c| {
            debug_assert!(c.index() < PID_NONE as usize);
            c.index() as u64
        });
        self.meta = (self.meta & !(0xFFFF << shift)) | (raw << shift);
    }
}

impl Default for PackedEntry {
    fn default() -> PackedEntry {
        PackedEntry::EMPTY
    }
}

/// Borrowed read-only view of one line's directory entry.
///
/// The packed word pair is copied (16 bytes); the arena stays borrowed so
/// sharer reads resolve spilled sets in place.
#[derive(Clone, Copy, Debug)]
pub struct EntryRef<'a> {
    packed: PackedEntry,
    arena: &'a SharerArena,
}

impl<'a> EntryRef<'a> {
    /// Processor holding the line exclusively (E or M), if any.
    #[inline]
    pub fn owner(self) -> Option<CoreId> {
        self.packed.pid(OWNER_SHIFT)
    }

    /// Whether memory's copy is stale (an owner holds it Modified).
    #[inline]
    pub fn dirty(self) -> bool {
        self.packed.meta & DIRTY_BIT != 0
    }

    /// The last processor to write (or read-exclusively acquire) the line
    /// in *some* checkpoint interval; may be stale.
    #[inline]
    pub fn lw_id(self) -> Option<CoreId> {
        self.packed.pid(LWID_SHIFT)
    }

    /// Iterates the sharers in increasing core-id order.
    #[inline]
    pub fn sharers(self) -> sharer_set::Iter {
        self.packed.sharers.iter(self.arena)
    }

    /// Whether the sharer list is empty.
    #[inline]
    pub fn sharers_empty(self) -> bool {
        self.packed.sharers.is_empty()
    }

    /// Number of sharers.
    #[inline]
    pub fn sharers_len(self) -> usize {
        self.packed.sharers.len(self.arena)
    }

    /// Whether `core` is in the sharer list.
    #[inline]
    pub fn has_sharer(self, core: CoreId) -> bool {
        self.packed.sharers.contains(core, self.arena)
    }

    /// The sharer list as a plain [`CoreSet`] value.
    pub fn sharer_coreset(self) -> CoreSet {
        self.packed.sharers.to_coreset(self.arena)
    }

    /// All processors with any cached copy (owner plus sharers).
    pub fn present(self) -> CoreSet {
        let mut s = self.sharer_coreset();
        if let Some(o) = self.owner() {
            s.insert(o);
        }
        s
    }

    /// Whether no processor caches the line.
    #[inline]
    pub fn is_uncached(self) -> bool {
        self.owner().is_none() && self.sharers_empty()
    }
}

/// Borrowed mutable view of one line's directory entry: split borrows of
/// the packed entry and the directory's spill arena, so sharer mutations
/// can promote/demote encodings in place.
pub struct EntryMut<'a> {
    packed: &'a mut PackedEntry,
    arena: &'a mut SharerArena,
}

impl<'a> EntryMut<'a> {
    /// See [`EntryRef::owner`].
    #[inline]
    pub fn owner(&self) -> Option<CoreId> {
        self.packed.pid(OWNER_SHIFT)
    }

    /// See [`EntryRef::dirty`].
    #[inline]
    pub fn dirty(&self) -> bool {
        self.packed.meta & DIRTY_BIT != 0
    }

    /// See [`EntryRef::lw_id`].
    #[inline]
    pub fn lw_id(&self) -> Option<CoreId> {
        self.packed.pid(LWID_SHIFT)
    }

    /// Sets (or clears) the exclusive owner.
    #[inline]
    pub fn set_owner(&mut self, owner: Option<CoreId>) {
        self.packed.set_pid(OWNER_SHIFT, owner);
    }

    /// Sets the Dirty bit.
    #[inline]
    pub fn set_dirty(&mut self, dirty: bool) {
        if dirty {
            self.packed.meta |= DIRTY_BIT;
        } else {
            self.packed.meta &= !DIRTY_BIT;
        }
    }

    /// Sets (or clears) the LW-ID field.
    #[inline]
    pub fn set_lw_id(&mut self, lw: Option<CoreId>) {
        self.packed.set_pid(LWID_SHIFT, lw);
    }

    /// Adds a sharer. Returns whether it was newly inserted.
    #[inline]
    pub fn insert_sharer(&mut self, core: CoreId) -> bool {
        self.packed.sharers.insert(core, self.arena)
    }

    /// Removes a sharer. Returns whether it was present.
    #[inline]
    pub fn remove_sharer(&mut self, core: CoreId) -> bool {
        self.packed.sharers.remove(core, self.arena)
    }

    /// Empties the sharer list (returning any spill slot).
    #[inline]
    pub fn clear_sharers(&mut self) {
        self.packed.sharers.clear(self.arena);
    }

    /// Whether the sharer list is empty.
    #[inline]
    pub fn sharers_empty(&self) -> bool {
        self.packed.sharers.is_empty()
    }

    /// Whether `core` is in the sharer list.
    #[inline]
    pub fn has_sharer(&self, core: CoreId) -> bool {
        self.packed.sharers.contains(core, self.arena)
    }
}

/// Aggregate directory footprint (diagnostics; see
/// [`Directory::footprint`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DirFootprint {
    /// Lines with directory state.
    pub entries: usize,
    /// Bytes resident in the entry array, presence bitmap and spill arena.
    pub resident_bytes: usize,
    /// Spilled sharer sets currently live.
    pub spill_live: usize,
    /// Spill slots ever allocated (high-water mark).
    pub spill_capacity: usize,
}

impl std::fmt::Display for DirFootprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} entries, {} KiB resident, spill {}/{} slots live",
            self.entries,
            self.resident_bytes / 1024,
            self.spill_live,
            self.spill_capacity,
        )
    }
}

/// The machine's directory: one logical full-map entry per line that has
/// ever been cached, stored as a dense `Vec<PackedEntry>` indexed by the
/// interned [`LineId`] with an existence bitmap — the hot
/// lookup/update path does zero hashing.
///
/// Physically the directory is distributed across tiles (the home node of a
/// line is `LineAddr::home_of`); since home placement only affects message
/// latency, the state itself is kept in one dense array. The array grows on
/// demand as new line ids are touched; ids are dense (the interner hands
/// them out in first-touch order), so growth is linear in the touched
/// working set, not in the address space.
///
/// # Example
///
/// ```
/// use rebound_coherence::Directory;
/// use rebound_engine::{CoreId, LineId};
///
/// let mut dir = Directory::new();
/// let mut e = dir.entry_mut(LineId(4));
/// e.set_owner(Some(CoreId(1)));
/// e.set_lw_id(Some(CoreId(1)));
/// assert_eq!(dir.entry(LineId(4)).lw_id(), Some(CoreId(1)));
/// ```
#[derive(Clone, Debug, Default)]
pub struct Directory {
    entries: Vec<PackedEntry>,
    /// Existence bitmap: bit `i` set iff line id `i` has directory state.
    present: Vec<u64>,
    touched: usize,
    /// Spill plane for the rare dense sharer sets.
    arena: SharerArena,
}

impl Directory {
    /// Creates an empty directory.
    pub fn new() -> Directory {
        Directory::default()
    }

    /// Creates an empty directory pre-sized for `lines` dense line ids, so
    /// first-touch entry creation never reallocates mid-run.
    pub fn with_capacity(lines: usize) -> Directory {
        Directory {
            entries: Vec::with_capacity(lines),
            present: Vec::with_capacity(lines.div_ceil(64)),
            touched: 0,
            arena: SharerArena::new(),
        }
    }

    #[inline]
    fn is_present(&self, id: LineId) -> bool {
        self.present
            .get(id.index() / 64)
            .is_some_and(|w| w & (1u64 << (id.index() % 64)) != 0)
    }

    /// Read-only view of a line's entry (default state if never touched).
    #[inline]
    pub fn entry(&self, id: LineId) -> EntryRef<'_> {
        let packed = if self.is_present(id) {
            self.entries[id.index()]
        } else {
            PackedEntry::EMPTY
        };
        EntryRef {
            packed,
            arena: &self.arena,
        }
    }

    /// Mutable entry view, created on first touch.
    #[inline]
    pub fn entry_mut(&mut self, id: LineId) -> EntryMut<'_> {
        let i = id.index();
        if i >= self.entries.len() {
            self.entries.resize(i + 1, PackedEntry::EMPTY);
            self.present.resize(i / 64 + 1, 0);
        }
        let word = &mut self.present[i / 64];
        let bit = 1u64 << (i % 64);
        if *word & bit == 0 {
            *word |= bit;
            self.touched += 1;
        }
        EntryMut {
            packed: &mut self.entries[i],
            arena: &mut self.arena,
        }
    }

    /// Number of lines with directory state.
    pub fn len(&self) -> usize {
        self.touched
    }

    /// Whether the directory is empty.
    pub fn is_empty(&self) -> bool {
        self.touched == 0
    }

    /// Clears the Dirty bit of `id` if `core` owns it — what happens as a
    /// checkpoint writes a dirty line back while keeping LW-ID intact
    /// (§3.3.1: "the directory clears the Dirty bit but not the LW-ID").
    #[inline]
    pub fn clean_owned_line(&mut self, id: LineId, core: CoreId) {
        if self.is_present(id) {
            let e = &mut self.entries[id.index()];
            if e.pid(OWNER_SHIFT) == Some(core) {
                e.meta &= !DIRTY_BIT;
            }
        }
    }

    /// Removes `core` from every sharer list and ownership, as cache
    /// invalidation during rollback requires. Returns the number of entries
    /// touched.
    pub fn purge_core(&mut self, core: CoreId) -> usize {
        let mut touched = 0;
        for i in 0..self.entries.len() {
            if self.present[i / 64] & (1u64 << (i % 64)) == 0 {
                continue;
            }
            let e = &mut self.entries[i];
            let mut hit = e.sharers.remove(core, &mut self.arena);
            if e.pid(OWNER_SHIFT) == Some(core) {
                e.set_pid(OWNER_SHIFT, None);
                e.meta &= !DIRTY_BIT;
                hit = true;
            }
            if hit {
                touched += 1;
            }
        }
        touched
    }

    /// Clears LW-ID (and Dirty) fields that point at `core`. "Although not
    /// necessary for correctness, as lines are restored to memory, the
    /// directories clear those LW-ID fields and Dirty bits that point to the
    /// processor" (§3.3.5).
    pub fn clear_lwid_of(&mut self, core: CoreId) -> usize {
        let mut touched = 0;
        let lw_match = (core.index() as u64) << LWID_SHIFT;
        for i in 0..self.entries.len() {
            if self.present[i / 64] & (1u64 << (i % 64)) == 0 {
                continue;
            }
            let e = &mut self.entries[i];
            if e.meta & (0xFFFF << LWID_SHIFT) == lw_match {
                e.set_pid(LWID_SHIFT, None);
                touched += 1;
            }
        }
        touched
    }

    /// Iterates over all (line id, entry view) pairs with directory state,
    /// in increasing id (= first-touch) order.
    pub fn iter(&self) -> impl Iterator<Item = (LineId, EntryRef<'_>)> + '_ {
        let arena = &self.arena;
        self.entries
            .iter()
            .enumerate()
            .filter(|&(i, _)| self.present[i / 64] & (1u64 << (i % 64)) != 0)
            .map(move |(i, e)| (LineId(i as u32), EntryRef { packed: *e, arena }))
    }

    /// Aggregate footprint of the directory's backing storage
    /// (diagnostics; resident, not touched, bytes).
    pub fn footprint(&self) -> DirFootprint {
        DirFootprint {
            entries: self.touched,
            resident_bytes: self.entries.capacity() * std::mem::size_of::<PackedEntry>()
                + self.present.capacity() * std::mem::size_of::<u64>()
                + self.arena.resident_bytes(),
            spill_live: self.arena.live(),
            spill_capacity: self.arena.capacity(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packed_entry_is_16_bytes() {
        assert_eq!(std::mem::size_of::<PackedEntry>(), 16);
    }

    #[test]
    fn untouched_entry_is_default() {
        let dir = Directory::new();
        let e = dir.entry(LineId(1));
        assert!(e.is_uncached());
        assert_eq!(e.lw_id(), None);
        assert!(!e.dirty());
        assert!(dir.is_empty());
    }

    #[test]
    fn entry_mut_creates_state() {
        let mut dir = Directory::new();
        dir.entry_mut(LineId(2)).insert_sharer(CoreId(3));
        assert_eq!(dir.len(), 1);
        assert!(dir.entry(LineId(2)).has_sharer(CoreId(3)));
    }

    #[test]
    fn present_includes_owner_and_sharers() {
        let mut dir = Directory::new();
        {
            let mut e = dir.entry_mut(LineId(0));
            e.insert_sharer(CoreId(1));
            e.set_owner(Some(CoreId(2)));
        }
        let e = dir.entry(LineId(0));
        let p = e.present();
        assert!(p.contains(CoreId(1)) && p.contains(CoreId(2)));
        assert_eq!(p.len(), 2);
        assert!(!e.is_uncached());
    }

    #[test]
    fn clean_owned_line_only_for_owner() {
        let mut dir = Directory::new();
        {
            let mut e = dir.entry_mut(LineId(5));
            e.set_owner(Some(CoreId(0)));
            e.set_dirty(true);
            e.set_lw_id(Some(CoreId(0)));
        }
        dir.clean_owned_line(LineId(5), CoreId(1));
        assert!(dir.entry(LineId(5)).dirty(), "non-owner cannot clean");
        dir.clean_owned_line(LineId(5), CoreId(0));
        let e = dir.entry(LineId(5));
        assert!(!e.dirty());
        assert_eq!(e.lw_id(), Some(CoreId(0)), "LW-ID must survive cleaning");
    }

    #[test]
    fn purge_core_removes_presence_everywhere() {
        let mut dir = Directory::new();
        {
            let mut e = dir.entry_mut(LineId(1));
            e.set_owner(Some(CoreId(4)));
            e.set_dirty(true);
        }
        dir.entry_mut(LineId(2)).insert_sharer(CoreId(4));
        dir.entry_mut(LineId(3)).insert_sharer(CoreId(5));
        assert_eq!(dir.purge_core(CoreId(4)), 2);
        assert!(dir.entry(LineId(1)).is_uncached());
        assert!(!dir.entry(LineId(1)).dirty());
        assert!(dir.entry(LineId(2)).sharers_empty());
        assert!(dir.entry(LineId(3)).has_sharer(CoreId(5)));
    }

    #[test]
    fn purge_core_preserves_lwid() {
        let mut dir = Directory::new();
        {
            let mut e = dir.entry_mut(LineId(1));
            e.set_owner(Some(CoreId(4)));
            e.set_lw_id(Some(CoreId(4)));
        }
        dir.purge_core(CoreId(4));
        assert_eq!(
            dir.entry(LineId(1)).lw_id(),
            Some(CoreId(4)),
            "displacement/purge never clears LW-ID (§3.3.1)"
        );
    }

    #[test]
    fn purge_core_demotes_wide_sharer_lists() {
        let mut dir = Directory::new();
        {
            let mut e = dir.entry_mut(LineId(9));
            for c in 0..5 {
                e.insert_sharer(CoreId(c));
            }
            e.insert_sharer(CoreId(512));
        }
        assert_eq!(dir.footprint().spill_live, 1);
        assert_eq!(dir.purge_core(CoreId(512)), 1);
        assert_eq!(dir.footprint().spill_live, 0, "purge reclaims the slot");
        assert_eq!(dir.entry(LineId(9)).sharers_len(), 5);
    }

    #[test]
    fn clear_lwid_of_targets_one_core() {
        let mut dir = Directory::new();
        dir.entry_mut(LineId(1)).set_lw_id(Some(CoreId(1)));
        dir.entry_mut(LineId(2)).set_lw_id(Some(CoreId(1)));
        dir.entry_mut(LineId(3)).set_lw_id(Some(CoreId(2)));
        assert_eq!(dir.clear_lwid_of(CoreId(1)), 2);
        assert_eq!(dir.entry(LineId(1)).lw_id(), None);
        assert_eq!(dir.entry(LineId(3)).lw_id(), Some(CoreId(2)));
    }

    #[test]
    fn iter_sees_all_entries() {
        let mut dir = Directory::new();
        dir.entry_mut(LineId(1));
        dir.entry_mut(LineId(2));
        assert_eq!(dir.iter().count(), 2);
    }

    #[test]
    fn sparse_high_ids_do_not_phantom_lower_entries() {
        let mut dir = Directory::new();
        dir.entry_mut(LineId(130)).set_dirty(true);
        assert_eq!(dir.len(), 1);
        // Ids 0..130 were allocated by the resize but never touched.
        assert!(dir.entry(LineId(64)).is_uncached());
        assert_eq!(dir.iter().count(), 1);
        assert_eq!(dir.iter().next().unwrap().0, LineId(130));
    }

    #[test]
    fn owner_and_lwid_cover_the_full_core_range() {
        let mut dir = Directory::new();
        {
            let mut e = dir.entry_mut(LineId(0));
            e.set_owner(Some(CoreId(1023)));
            e.set_lw_id(Some(CoreId(1023)));
            e.set_dirty(true);
        }
        let e = dir.entry(LineId(0));
        assert_eq!(e.owner(), Some(CoreId(1023)));
        assert_eq!(e.lw_id(), Some(CoreId(1023)));
        assert!(e.dirty());
    }

    #[test]
    fn footprint_reports_resident_and_spill() {
        let mut dir = Directory::with_capacity(64);
        assert_eq!(dir.footprint().entries, 0);
        let mut e = dir.entry_mut(LineId(0));
        for c in 0..100 {
            e.insert_sharer(CoreId(c));
        }
        let fp = dir.footprint();
        assert_eq!(fp.entries, 1);
        assert_eq!((fp.spill_live, fp.spill_capacity), (1, 1));
        assert!(fp.resident_bytes >= 64 * 16 + 128);
        let shown = fp.to_string();
        assert!(shown.contains("spill 1/1"), "{shown}");
    }
}
