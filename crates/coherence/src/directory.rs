//! The full-map directory, extended with Rebound's LW-ID field.

use rebound_engine::{CoreId, LineId};

use crate::coreset::CoreSet;

/// Directory state for one memory line.
///
/// A standard full-map MESI directory entry (sharer list + owner + Dirty
/// bit), augmented with the paper's **Last Writer ID**: "each entry in the
/// directory module is augmented with a processor ID field called Last
/// Writer ID (LW-ID)" (§3.3). Crucially, LW-ID is *not* cleared when the
/// line is displaced from the writer's cache, nor when the writer
/// checkpoints — it is allowed to go stale (§3.3.2) and is lazily corrected
/// by `NO_WR` replies after a WSIG membership miss.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DirEntry {
    /// Processors holding a (clean) copy of the line.
    pub sharers: CoreSet,
    /// Processor holding the line exclusively (E or M), if any.
    pub owner: Option<CoreId>,
    /// Whether memory's copy is stale (an owner holds it Modified).
    pub dirty: bool,
    /// The last processor to write (or read-exclusively acquire) the line in
    /// *some* checkpoint interval; may be stale.
    pub lw_id: Option<CoreId>,
}

impl DirEntry {
    /// All processors with any cached copy (owner plus sharers).
    pub fn present(&self) -> CoreSet {
        let mut s = self.sharers;
        if let Some(o) = self.owner {
            s.insert(o);
        }
        s
    }

    /// Whether no processor caches the line.
    pub fn is_uncached(&self) -> bool {
        self.owner.is_none() && self.sharers.is_empty()
    }
}

/// The machine's directory: one logical full-map entry per line that has
/// ever been cached, stored as a dense `Vec<DirEntry>` indexed by the
/// interned [`LineId`] with an existence bitmap — the hot
/// lookup/update path does zero hashing.
///
/// Physically the directory is distributed across tiles (the home node of a
/// line is `LineAddr::home_of`); since home placement only affects message
/// latency, the state itself is kept in one dense array. The array grows on
/// demand as new line ids are touched; ids are dense (the interner hands
/// them out in first-touch order), so growth is linear in the touched
/// working set, not in the address space.
///
/// # Example
///
/// ```
/// use rebound_coherence::Directory;
/// use rebound_engine::{CoreId, LineId};
///
/// let mut dir = Directory::new();
/// let e = dir.entry_mut(LineId(4));
/// e.owner = Some(CoreId(1));
/// e.lw_id = Some(CoreId(1));
/// assert_eq!(dir.entry(LineId(4)).lw_id, Some(CoreId(1)));
/// ```
#[derive(Clone, Debug, Default)]
pub struct Directory {
    entries: Vec<DirEntry>,
    /// Existence bitmap: bit `i` set iff line id `i` has directory state.
    present: Vec<u64>,
    touched: usize,
}

impl Directory {
    /// Creates an empty directory.
    pub fn new() -> Directory {
        Directory::default()
    }

    /// Creates an empty directory pre-sized for `lines` dense line ids, so
    /// first-touch entry creation never reallocates mid-run.
    pub fn with_capacity(lines: usize) -> Directory {
        Directory {
            entries: Vec::with_capacity(lines),
            present: Vec::with_capacity(lines.div_ceil(64)),
            touched: 0,
        }
    }

    #[inline]
    fn is_present(&self, id: LineId) -> bool {
        self.present
            .get(id.index() / 64)
            .is_some_and(|w| w & (1u64 << (id.index() % 64)) != 0)
    }

    /// Read-only view of a line's entry (default state if never touched).
    #[inline]
    pub fn entry(&self, id: LineId) -> DirEntry {
        if self.is_present(id) {
            self.entries[id.index()]
        } else {
            DirEntry::default()
        }
    }

    /// Mutable entry, created on first touch.
    #[inline]
    pub fn entry_mut(&mut self, id: LineId) -> &mut DirEntry {
        let i = id.index();
        if i >= self.entries.len() {
            self.entries.resize(i + 1, DirEntry::default());
            self.present.resize(i / 64 + 1, 0);
        }
        let word = &mut self.present[i / 64];
        let bit = 1u64 << (i % 64);
        if *word & bit == 0 {
            *word |= bit;
            self.touched += 1;
        }
        &mut self.entries[i]
    }

    /// Number of lines with directory state.
    pub fn len(&self) -> usize {
        self.touched
    }

    /// Whether the directory is empty.
    pub fn is_empty(&self) -> bool {
        self.touched == 0
    }

    /// Clears the Dirty bit of `id` if `core` owns it — what happens as a
    /// checkpoint writes a dirty line back while keeping LW-ID intact
    /// (§3.3.1: "the directory clears the Dirty bit but not the LW-ID").
    #[inline]
    pub fn clean_owned_line(&mut self, id: LineId, core: CoreId) {
        if self.is_present(id) {
            let e = &mut self.entries[id.index()];
            if e.owner == Some(core) {
                e.dirty = false;
            }
        }
    }

    /// Removes `core` from every sharer list and ownership, as cache
    /// invalidation during rollback requires. Returns the number of entries
    /// touched.
    pub fn purge_core(&mut self, core: CoreId) -> usize {
        let mut touched = 0;
        for e in self.present_entries_mut() {
            let mut hit = false;
            if e.sharers.remove(core) {
                hit = true;
            }
            if e.owner == Some(core) {
                e.owner = None;
                e.dirty = false;
                hit = true;
            }
            if hit {
                touched += 1;
            }
        }
        touched
    }

    /// Clears LW-ID (and Dirty) fields that point at `core`. "Although not
    /// necessary for correctness, as lines are restored to memory, the
    /// directories clear those LW-ID fields and Dirty bits that point to the
    /// processor" (§3.3.5).
    pub fn clear_lwid_of(&mut self, core: CoreId) -> usize {
        let mut touched = 0;
        for e in self.present_entries_mut() {
            if e.lw_id == Some(core) {
                e.lw_id = None;
                touched += 1;
            }
        }
        touched
    }

    /// Iterates over all (line id, entry) pairs with directory state, in
    /// increasing id (= first-touch) order.
    pub fn iter(&self) -> impl Iterator<Item = (LineId, &DirEntry)> + '_ {
        self.entries
            .iter()
            .enumerate()
            .filter(|&(i, _)| self.present[i / 64] & (1u64 << (i % 64)) != 0)
            .map(|(i, e)| (LineId(i as u32), e))
    }

    fn present_entries_mut(&mut self) -> impl Iterator<Item = &mut DirEntry> + '_ {
        let present = &self.present;
        self.entries
            .iter_mut()
            .enumerate()
            .filter(move |&(i, _)| present[i / 64] & (1u64 << (i % 64)) != 0)
            .map(|(_, e)| e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untouched_entry_is_default() {
        let dir = Directory::new();
        let e = dir.entry(LineId(1));
        assert!(e.is_uncached());
        assert_eq!(e.lw_id, None);
        assert!(!e.dirty);
        assert!(dir.is_empty());
    }

    #[test]
    fn entry_mut_creates_state() {
        let mut dir = Directory::new();
        dir.entry_mut(LineId(2)).sharers.insert(CoreId(3));
        assert_eq!(dir.len(), 1);
        assert!(dir.entry(LineId(2)).sharers.contains(CoreId(3)));
    }

    #[test]
    fn present_includes_owner_and_sharers() {
        let mut e = DirEntry::default();
        e.sharers.insert(CoreId(1));
        e.owner = Some(CoreId(2));
        let p = e.present();
        assert!(p.contains(CoreId(1)) && p.contains(CoreId(2)));
        assert_eq!(p.len(), 2);
        assert!(!e.is_uncached());
    }

    #[test]
    fn clean_owned_line_only_for_owner() {
        let mut dir = Directory::new();
        {
            let e = dir.entry_mut(LineId(5));
            e.owner = Some(CoreId(0));
            e.dirty = true;
            e.lw_id = Some(CoreId(0));
        }
        dir.clean_owned_line(LineId(5), CoreId(1));
        assert!(dir.entry(LineId(5)).dirty, "non-owner cannot clean");
        dir.clean_owned_line(LineId(5), CoreId(0));
        let e = dir.entry(LineId(5));
        assert!(!e.dirty);
        assert_eq!(e.lw_id, Some(CoreId(0)), "LW-ID must survive cleaning");
    }

    #[test]
    fn purge_core_removes_presence_everywhere() {
        let mut dir = Directory::new();
        {
            let e = dir.entry_mut(LineId(1));
            e.owner = Some(CoreId(4));
            e.dirty = true;
        }
        dir.entry_mut(LineId(2)).sharers.insert(CoreId(4));
        dir.entry_mut(LineId(3)).sharers.insert(CoreId(5));
        assert_eq!(dir.purge_core(CoreId(4)), 2);
        assert!(dir.entry(LineId(1)).is_uncached());
        assert!(!dir.entry(LineId(1)).dirty);
        assert!(dir.entry(LineId(2)).sharers.is_empty());
        assert!(dir.entry(LineId(3)).sharers.contains(CoreId(5)));
    }

    #[test]
    fn purge_core_preserves_lwid() {
        let mut dir = Directory::new();
        {
            let e = dir.entry_mut(LineId(1));
            e.owner = Some(CoreId(4));
            e.lw_id = Some(CoreId(4));
        }
        dir.purge_core(CoreId(4));
        assert_eq!(
            dir.entry(LineId(1)).lw_id,
            Some(CoreId(4)),
            "displacement/purge never clears LW-ID (§3.3.1)"
        );
    }

    #[test]
    fn clear_lwid_of_targets_one_core() {
        let mut dir = Directory::new();
        dir.entry_mut(LineId(1)).lw_id = Some(CoreId(1));
        dir.entry_mut(LineId(2)).lw_id = Some(CoreId(1));
        dir.entry_mut(LineId(3)).lw_id = Some(CoreId(2));
        assert_eq!(dir.clear_lwid_of(CoreId(1)), 2);
        assert_eq!(dir.entry(LineId(1)).lw_id, None);
        assert_eq!(dir.entry(LineId(3)).lw_id, Some(CoreId(2)));
    }

    #[test]
    fn iter_sees_all_entries() {
        let mut dir = Directory::new();
        dir.entry_mut(LineId(1));
        dir.entry_mut(LineId(2));
        assert_eq!(dir.iter().count(), 2);
    }

    #[test]
    fn sparse_high_ids_do_not_phantom_lower_entries() {
        let mut dir = Directory::new();
        dir.entry_mut(LineId(130)).dirty = true;
        assert_eq!(dir.len(), 1);
        // Ids 0..130 were allocated by the resize but never touched.
        assert!(dir.entry(LineId(64)).is_uncached());
        assert_eq!(dir.iter().count(), 1);
        assert_eq!(dir.iter().next().unwrap().0, LineId(130));
    }
}
