//! Directory-based cache-coherence substrate for the Rebound reproduction.
//!
//! Rebound's dependence tracking is *defined in terms of* directory-protocol
//! transactions (§3.3.1): the directory entry carries a Last-Writer-ID
//! (LW-ID) field, and the read/write/read-exclusive transaction rules of
//! Fig 3.2 are what populate the per-core `MyProducers`/`MyConsumers`
//! registers. This crate provides the coherence-side data structures:
//!
//! * [`CoreSet`] — a 1024-bit processor bitmask (sharer lists and Dep
//!   registers are both "as many bits as processors in the chip"); the
//!   wire/value format where sets are genuinely dense.
//! * [`SharerSet`]/[`SharerArena`] — the directory's compact adaptive
//!   sharer representation: inline pointers / single-word mask in one
//!   tagged word, spilling to an arena of full masks only on overflow.
//! * [`Directory`] — full-map directory entries extended with LW-ID and a
//!   Dirty bit, packed to 16 bytes per line and accessed through borrowed
//!   [`EntryRef`]/[`EntryMut`] views, plus bulk operations needed by
//!   rollback.
//! * [`MsgKind`]/[`MsgStats`] — the message taxonomy, separating baseline
//!   protocol traffic from the extra dependence-maintenance messages so the
//!   4.2% overhead row of Table 6.1 can be measured.
//! * [`Interconnect`] — the fixed-latency multistage network model of
//!   Fig 4.3(a).
//! * [`SharerVector`] — the §8 compressed directory organizations (coarse
//!   vector over clusters, limited pointers with broadcast overflow) and
//!   their precision/storage accounting.

pub mod coreset;
pub mod directory;
pub mod msg;
pub mod net;
pub mod sharer_set;
pub mod sharer_vec;

pub use coreset::CoreSet;
pub use directory::{DirFootprint, Directory, EntryMut, EntryRef};
pub use msg::{MsgClass, MsgKind, MsgStats};
pub use net::{Interconnect, NetConfig};
pub use sharer_set::{SharerArena, SharerRepr, SharerSet};
pub use sharer_vec::{DirOrg, SharerVector};
