//! Workspace smoke test: one small machine per `Scheme` variant runs a few
//! thousand instructions, and the whole simulation is deterministic — two
//! machines built from the same `(config, seed)` produce identical
//! checkpoint counts, instruction counts, and message traffic.

use rebound::core::{Machine, MachineConfig, RunReport, Scheme};
use rebound::workloads::profile_named;

const SCHEMES: &[(&str, Scheme)] = &[
    ("None", Scheme::None),
    ("Global", Scheme::GLOBAL),
    ("Global_DWB", Scheme::GLOBAL_DWB),
    ("Rebound", Scheme::REBOUND),
    ("Rebound_NoDWB", Scheme::REBOUND_NODWB),
    ("Rebound_Barrier", Scheme::REBOUND_BARR),
];

fn run_once(scheme: Scheme, seed: u64) -> RunReport {
    let mut cfg = MachineConfig::small(4);
    cfg.scheme = scheme;
    cfg.ckpt_interval_insts = 2_000;
    cfg.seed = seed;
    let profile = profile_named("Barnes").expect("Barnes profile exists");
    let mut machine = Machine::from_profile(&cfg, &profile, 8_000);
    machine.run_to_completion()
}

#[test]
fn every_scheme_runs_and_is_deterministic() {
    for &(label, scheme) in SCHEMES {
        let a = run_once(scheme, 42);
        let b = run_once(scheme, 42);
        assert!(a.insts > 0, "{label}: no instructions retired");
        assert_eq!(a.cores, 4, "{label}");
        assert_eq!(a.checkpoints, b.checkpoints, "{label}: checkpoints differ");
        assert_eq!(a.insts, b.insts, "{label}: instruction counts differ");
        assert_eq!(a.cycles, b.cycles, "{label}: cycle counts differ");
        assert_eq!(
            a.msgs.total(),
            b.msgs.total(),
            "{label}: message counts differ"
        );
        if scheme.checkpoints() {
            assert!(a.checkpoints > 0, "{label}: interval never fired");
        }
    }
}

#[test]
fn seeds_change_the_run() {
    let a = run_once(Scheme::REBOUND, 1);
    let b = run_once(Scheme::REBOUND, 2);
    // Different seeds must give genuinely different executions (address
    // streams diverge), while both still complete their quota.
    assert!(a.insts > 0 && b.insts > 0);
    assert_ne!(
        (a.cycles, a.msgs.total()),
        (b.cycles, b.msgs.total()),
        "different seeds produced identical runs"
    );
}
