//! Workspace smoke test: one small machine per `Scheme` variant runs a few
//! thousand instructions, and the whole simulation is deterministic — two
//! machines built from the same `(config, seed)` produce identical
//! checkpoint counts, instruction counts, and message traffic.
//!
//! The quick per-scheme check below runs on every `cargo test`; the same
//! property over the **full Fig 4.3(a) matrix** — all 7 `Scheme` consts ×
//! all 18 catalog profiles, executed through the campaign harness — is
//! `#[ignore]`-gated (`cargo test -- --ignored`) because it runs a couple
//! hundred machines.

use rebound::core::{Machine, MachineConfig, RunReport, Scheme};
use rebound::harness::{default_jobs, run_campaign, CampaignSpec};
use rebound::workloads::profile_named;

const SCHEMES: &[(&str, Scheme)] = &[
    ("None", Scheme::None),
    ("Global", Scheme::GLOBAL),
    ("Global_DWB", Scheme::GLOBAL_DWB),
    ("Rebound", Scheme::REBOUND),
    ("Rebound_NoDWB", Scheme::REBOUND_NODWB),
    ("Rebound_Barrier", Scheme::REBOUND_BARR),
];

fn run_once(scheme: Scheme, seed: u64) -> RunReport {
    let mut cfg = MachineConfig::small(4);
    cfg.scheme = scheme;
    cfg.ckpt_interval_insts = 2_000;
    cfg.seed = seed;
    let profile = profile_named("Barnes").expect("Barnes profile exists");
    let mut machine = Machine::from_profile(&cfg, &profile, 8_000);
    machine.run_to_completion()
}

#[test]
fn every_scheme_runs_and_is_deterministic() {
    for &(label, scheme) in SCHEMES {
        let a = run_once(scheme, 42);
        let b = run_once(scheme, 42);
        assert!(a.insts > 0, "{label}: no instructions retired");
        assert_eq!(a.cores, 4, "{label}");
        assert_eq!(a.checkpoints, b.checkpoints, "{label}: checkpoints differ");
        assert_eq!(a.insts, b.insts, "{label}: instruction counts differ");
        assert_eq!(a.cycles, b.cycles, "{label}: cycle counts differ");
        assert_eq!(
            a.msgs.total(),
            b.msgs.total(),
            "{label}: message counts differ"
        );
        if scheme.checkpoints() {
            assert!(a.checkpoints > 0, "{label}: interval never fired");
        }
    }
}

/// The determinism property promoted to the whole configuration matrix:
/// every `Scheme` const × every catalog profile runs through the campaign
/// harness twice at different worker counts, and the aggregate results —
/// every cycle count, message total and checkpoint count in the CSV —
/// must be byte-identical. Run with `cargo test -- --ignored`.
#[test]
#[ignore = "runs 7 schemes x 18 profiles twice; minutes, not seconds"]
fn full_matrix_determinism_across_worker_counts() {
    let spec = CampaignSpec::full_matrix();
    let jobs = spec.expand();
    assert_eq!(
        jobs.len(),
        Scheme::ALL.len() * rebound::all_profiles().len(),
        "matrix must cover every scheme x app"
    );

    // jobs=1 takes parallel_map's inline path; the other count always
    // spawns real workers — two genuinely different schedules even on a
    // 2-core runner.
    let parallel = run_campaign(&spec, default_jobs().max(2));
    let serial = run_campaign(&spec, 1);
    assert_eq!(
        parallel.to_csv(),
        serial.to_csv(),
        "worker count changed the aggregate results"
    );
    assert!(parallel.failures().is_empty(), "{}", parallel.summary());

    // Every cell actually ran its workload.
    for o in &parallel.rows {
        assert!(o.run.insts > 0, "{} retired nothing", o.job.label());
        if o.job.scheme.checkpoints() {
            assert!(
                o.run.checkpoints > 0,
                "{} never checkpointed",
                o.job.label()
            );
        }
    }
}

#[test]
fn seeds_change_the_run() {
    let a = run_once(Scheme::REBOUND, 1);
    let b = run_once(Scheme::REBOUND, 2);
    // Different seeds must give genuinely different executions (address
    // streams diverge), while both still complete their quota.
    assert!(a.insts > 0 && b.insts > 0);
    assert_ne!(
        (a.cycles, a.msgs.total()),
        (b.cycles, b.msgs.total()),
        "different seeds produced identical runs"
    );
}
