//! Cross-crate integration through the facade: the extension subsystems
//! composed end-to-end the way a downstream user would wire them.

use rebound::core::{CoreProgram, Machine, MachineConfig, OutputCommitBuffer, Scheme};
use rebound::engine::{CoreId, Cycle};
use rebound::nvm::{NvmConfig, NvmLog};
use rebound::swdep::{CommGraph, Granularity, Replay};
use rebound::trace::{record, Trace};
use rebound::workloads::profile_named;

/// Trace → wire format → machine → NVM pricing: the full extension
/// pipeline on one workload.
#[test]
fn trace_machine_nvm_pipeline() {
    let ncores = 6;
    let profile = profile_named("Water-Sp").expect("catalog app");

    // Record and round-trip the trace.
    let trace = record(&profile, ncores, 7, 20_000);
    let mut wire = Vec::new();
    trace.write_to(&mut wire).expect("serialize");
    let trace = Trace::read_from(&wire[..]).expect("deserialize");

    // Run the machine on the replayed trace.
    let mut cfg = MachineConfig::small(ncores);
    cfg.scheme = Scheme::REBOUND;
    cfg.ckpt_interval_insts = 6_000;
    cfg.seed = 7;
    let programs = trace
        .into_scripts()
        .into_iter()
        .map(CoreProgram::script)
        .collect();
    let report = Machine::with_programs(&cfg, programs).run_to_completion();
    assert!(report.checkpoints > 0);
    assert!(report.log_entries > 0);

    // Price the measured log volume on PCM and sanity-check the
    // availability budget at this scale.
    let mut log = NvmLog::new(NvmConfig::pcm());
    log.append_lines(report.log_entries);
    let rec = log.estimate_recovery(report.log_entries, true);
    assert!(rec.total_cycles() > 0);
    assert!(
        rec.total_ms() < 860.0,
        "availability budget blown at toy scale"
    );
}

/// Software tracking agrees with hardware tracking through the facade
/// types: hardware Dep registers rebuilt as a CommGraph contain the
/// software line-granularity graph of the same scripts.
///
/// The containment contract requires both trackers to observe the same
/// access order, so the scripts are phased — every producer store
/// finishes (separated by a long compute burst) before any consumer
/// load — making the dependence set interleaving-independent.
#[test]
fn software_graph_is_contained_in_hardware_graph() {
    use rebound::engine::Addr;
    use rebound::workloads::Op;

    let ncores = 4;
    let slot = |i: usize| Addr(0x1_0000 + (i as u64) * 32);
    let scripts: Vec<Vec<Op>> = (0..ncores)
        .map(|i| {
            vec![
                Op::Store(slot(i)),
                Op::Compute(50_000),
                Op::Load(slot((i + 1) % ncores)),
                Op::Load(slot((i + 2) % ncores)),
            ]
        })
        .collect();

    let sw = Replay::new(scripts.clone(), Granularity::Line).run();

    let mut cfg = MachineConfig::small(ncores);
    cfg.scheme = Scheme::REBOUND;
    cfg.ckpt_interval_insts = u64::MAX / 2;
    cfg.seed = 3;
    let programs = scripts.into_iter().map(CoreProgram::script).collect();
    let mut hw = Machine::with_programs(&cfg, programs);
    hw.run_to_completion();

    let mut hw_graph = CommGraph::new(ncores);
    for p in 0..ncores {
        for c in hw.my_consumers(CoreId(p)).iter() {
            hw_graph.record(CoreId(p), c);
        }
    }
    assert!(
        sw.graph.is_subgraph_of(&hw_graph),
        "software edges must be a subset of hardware edges"
    );
}

/// Output commit driven by a real machine's checkpoint cadence: every
/// response eventually commits and none commits before its seal + L.
#[test]
fn output_commit_with_machine_checkpoint_timeline() {
    let ncores = 4;
    let l = 1_000u64;
    let mut cfg = MachineConfig::small(ncores);
    cfg.scheme = Scheme::REBOUND;
    cfg.ckpt_interval_insts = 5_000;
    cfg.detect_latency = l;
    let profile = profile_named("Apache").expect("catalog app");
    let mut m = Machine::from_profile(&cfg, &profile, 20_000);
    let report = m.run_to_completion();

    let per_core = (report.checkpoints / ncores as u64).max(1);
    let interval_cycles = report.cycles / per_core;
    let mut buf = OutputCommitBuffer::new(ncores, l);
    for c in 0..ncores {
        let mut now = 0u64;
        for iv in 0..per_core {
            buf.push(CoreId(c), Cycle(now + 1), iv);
            now += interval_cycles;
            buf.checkpoint_complete(CoreId(c), iv, Cycle(now));
        }
    }
    let horizon = report.cycles + l + 1;
    let mut committed = 0;
    let mut t = 0;
    while t <= horizon {
        t += 250;
        for out in buf.release(Cycle(t)) {
            committed += 1;
            assert!(out.commit_latency() >= l, "committed before safe: {out}");
        }
    }
    assert_eq!(committed as u64, per_core * ncores as u64);
    assert_eq!(buf.pending(), 0);
}
