//! Cross-crate integration tests through the `rebound` facade: full
//! machine runs combining workloads, checkpointing schemes, the power
//! model and fault recovery.

use rebound::core::{Machine, MachineConfig, Scheme};
use rebound::engine::{CoreId, Cycle};
use rebound::power::{run_energy, ActivityCounts, EnergyParams};
use rebound::{all_profiles, profile_named};

fn small_cfg(n: usize, scheme: Scheme) -> MachineConfig {
    let mut c = MachineConfig::small(n);
    c.scheme = scheme;
    c.ckpt_interval_insts = 10_000;
    c.detect_latency = 1_000;
    c
}

#[test]
fn every_catalog_app_runs_under_every_scheme() {
    let schemes = [
        Scheme::None,
        Scheme::GLOBAL,
        Scheme::GLOBAL_DWB,
        Scheme::REBOUND_NODWB,
        Scheme::REBOUND,
        Scheme::REBOUND_BARR,
        Scheme::REBOUND_NODWB_BARR,
    ];
    for p in all_profiles() {
        for s in schemes {
            let cfg = small_cfg(6, s);
            let mut m = Machine::from_profile(&cfg, &p, 25_000);
            let r = m.run_to_completion();
            assert!(m.is_finished(), "{} under {}", p.name, s.label());
            assert!(r.insts >= 6 * 25_000, "{} under {}", p.name, s.label());
            if s.checkpoints() {
                assert!(r.checkpoints > 0, "{} under {}", p.name, s.label());
            } else {
                assert_eq!(r.checkpoints, 0);
            }
        }
    }
}

#[test]
fn rebound_interaction_sets_are_never_larger_than_global() {
    for name in ["Blackscholes", "Water-Sp", "Barnes"] {
        let p = profile_named(name).unwrap();
        let g = {
            let mut m = Machine::from_profile(&small_cfg(8, Scheme::GLOBAL), &p, 30_000);
            m.run_to_completion()
        };
        let r = {
            let mut m = Machine::from_profile(&small_cfg(8, Scheme::REBOUND), &p, 30_000);
            m.run_to_completion()
        };
        assert!(
            (g.ichk_fraction() - 1.0).abs() < 1e-9,
            "Global is always 100%"
        );
        assert!(
            r.ichk_fraction() <= 1.0 + 1e-9,
            "{name}: Rebound ICHK bounded"
        );
        assert!(
            r.ichk_fraction() < g.ichk_fraction() + 1e-9,
            "{name}: Rebound must not exceed Global"
        );
    }
}

#[test]
fn checkpointing_costs_messages_and_log_traffic() {
    let p = profile_named("FMM").unwrap();
    let base = {
        let mut m = Machine::from_profile(&small_cfg(6, Scheme::None), &p, 25_000);
        m.run_to_completion()
    };
    let reb = {
        let mut m = Machine::from_profile(&small_cfg(6, Scheme::REBOUND), &p, 25_000);
        m.run_to_completion()
    };
    assert_eq!(base.log_entries, 0);
    assert!(reb.log_entries > 0);
    assert!(reb.msgs.protocol.get() > 0, "checkpoint protocol ran");
    assert!(reb.msgs.dep.get() > 0, "LW-ID queries happened");
    assert_eq!(base.msgs.dep.get(), 0, "no dep traffic without Rebound");
}

#[test]
fn fault_recovery_on_a_real_workload_converges() {
    let p = profile_named("Cholesky").unwrap();
    let clean = {
        let mut m = Machine::from_profile(&small_cfg(4, Scheme::REBOUND), &p, 20_000);
        m.run_to_completion();
        m
    };
    let mut faulty = Machine::from_profile(&small_cfg(4, Scheme::REBOUND), &p, 20_000);
    faulty.schedule_fault_detection(CoreId(1), Cycle(30_000));
    let r = faulty.run_to_completion();
    assert!(r.rollbacks >= 1);
    // Deterministic convergence: compare a swath of the shared space.
    for l in 0..2_000u64 {
        let line = rebound::engine::LineAddr((2u64 << 35) | l);
        assert_eq!(
            clean.effective_line_value(line),
            faulty.effective_line_value(line),
            "line {l} diverged after recovery"
        );
    }
}

#[test]
fn power_model_orders_schemes_sanely() {
    let p = profile_named("Radix").unwrap();
    let to_counts = |r: &rebound::RunReport| ActivityCounts {
        instructions: r.insts,
        l1_accesses: r.metrics.l1_accesses.get(),
        l2_accesses: r.metrics.l2_accesses.get(),
        mem_lines: r.metrics.mem_lines.get(),
        net_msgs: r.msgs.total(),
        dep_ops: r.metrics.wsig_ops.get(),
        lwid_updates: r.metrics.lwid_updates.get(),
        log_entries: r.metrics.log_entries.get(),
        cycles: r.cycles,
        has_dep_hardware: r.scheme.tracks_dependences(),
    };
    let params = EnergyParams::default();
    let base = {
        let mut m = Machine::from_profile(&small_cfg(6, Scheme::None), &p, 25_000);
        m.run_to_completion()
    };
    let reb = {
        let mut m = Machine::from_profile(&small_cfg(6, Scheme::REBOUND), &p, 25_000);
        m.run_to_completion()
    };
    let e_base = run_energy(&params, &to_counts(&base));
    let e_reb = run_energy(&params, &to_counts(&reb));
    assert!(
        e_reb.energy.total() > e_base.energy.total(),
        "checkpointing must cost energy"
    );
    assert!(e_reb.energy.dep_hardware > 0.0);
    assert_eq!(e_base.energy.dep_hardware, 0.0);
}

#[test]
fn io_pressure_shrinks_global_checkpoint_interval_not_rebounds() {
    use rebound::core::IoPressure;
    let p = profile_named("Blackscholes").unwrap();
    let run = |scheme: Scheme, io: bool| {
        let mut cfg = small_cfg(8, scheme);
        if io {
            cfg.io = Some(IoPressure {
                core: CoreId(0),
                period_cycles: 15_000,
            });
        }
        let mut m = Machine::from_profile(&cfg, &p, 40_000);
        m.run_to_completion().metrics.ckpt_intervals.mean()
    };
    let g = run(Scheme::GLOBAL, false);
    let g_io = run(Scheme::GLOBAL, true);
    let r = run(Scheme::REBOUND, false);
    let r_io = run(Scheme::REBOUND, true);
    assert!(g_io < g, "I/O must shorten Global's interval");
    let g_drop = g / g_io;
    let r_drop = r / r_io.max(1.0);
    assert!(
        g_drop > r_drop,
        "Global must be hurt more than Rebound (g {g_drop:.2}x vs r {r_drop:.2}x)"
    );
}
