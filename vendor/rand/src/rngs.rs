//! Small, fast generators.

use crate::{RngCore, SeedableRng};

/// xoshiro256++ — the small-state generator family the real `rand` crate
/// backs `SmallRng` with on 64-bit platforms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

impl RngCore for SmallRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for SmallRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
        }
        // An all-zero state is the one fixed point of xoshiro; nudge it.
        if s == [0; 4] {
            s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
        }
        SmallRng { s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    #[test]
    fn deterministic_from_seed() {
        let mut a = SmallRng::seed_from_u64(123);
        let mut b = SmallRng::seed_from_u64(123);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_bounds_and_coverage() {
        let mut r = SmallRng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.gen_range(0u64..10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }

    #[test]
    fn gen_bool_calibration() {
        let mut r = SmallRng::seed_from_u64(9);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "got {hits}");
    }

    #[test]
    fn zero_seed_is_not_stuck() {
        let mut r = SmallRng::from_seed([0; 32]);
        assert_ne!(r.next_u64(), r.next_u64());
    }
}
