//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so this
//! vendored crate implements exactly the surface the workspace uses:
//! [`rngs::SmallRng`] plus the [`Rng`], [`RngCore`] and [`SeedableRng`]
//! traits with `seed_from_u64`, `next_u32`/`next_u64`, `gen_range` over
//! half-open integer ranges, and `gen_bool`.
//!
//! `SmallRng` is xoshiro256++ (the same family the real crate uses on
//! 64-bit targets), seeded through SplitMix64 — high-quality, fast, and
//! fully deterministic from a 64-bit seed.

pub mod rngs;

/// Low-level source of random bits.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    type Seed: AsMut<[u8]> + Default;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a 64-bit state into a full seed via SplitMix64.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Integer types usable with [`Rng::gen_range`].
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_below<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_below<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as u128).wrapping_sub(lo as u128);
                // Lemire-style widening multiply; bias is < 2^-64 per draw,
                // far below anything the simulator's statistics can see.
                let wide = (rng.next_u64() as u128).wrapping_mul(span);
                lo.wrapping_add((wide >> 64) as $t)
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience draws layered on [`RngCore`].
pub trait Rng: RngCore {
    #[inline]
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample_below(self, range.start, range.end)
    }

    /// `true` with probability `p`. Panics if `p` is not in `[0, 1]`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        // 53 high bits give a uniform f64 in [0, 1).
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}
