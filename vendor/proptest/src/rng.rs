//! Deterministic generator backing the test runner.

/// SplitMix64 — statistically solid for test-case generation and trivially
/// seedable. Determinism matters more than quality here: a failing case
/// must reproduce from the printed seed.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`; `bound` must be non-zero.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        (((self.next_u64() as u128) * (bound as u128)) >> 64) as u64
    }

    /// Uniform draw in `[0, 1)`.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}
