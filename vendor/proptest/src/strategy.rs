//! The [`Strategy`] trait and its combinators.

use crate::rng::TestRng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no value tree / shrinking machinery: a
/// strategy is just a deterministic function of the runner's RNG state.
pub trait Strategy {
    type Value;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { source: self, f }
    }

    /// Generate from a strategy derived from each value.
    fn prop_flat_map<U, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        U: Strategy,
        F: Fn(Self::Value) -> U,
    {
        FlatMap { source: self, f }
    }

    /// Discard values failing the predicate (bounded retries, then panic —
    /// this stand-in has no global rejection budget).
    fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            source: self,
            reason,
            f,
        }
    }

    /// Type-erase the strategy (used by [`prop_oneof!`](crate::prop_oneof)).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        let source = self;
        BoxedStrategy(Box::new(move |rng: &mut TestRng| source.new_value(rng)))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn new_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.source.new_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, F, U> Strategy for FlatMap<S, F>
where
    S: Strategy,
    U: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U::Value;
    fn new_value(&self, rng: &mut TestRng) -> U::Value {
        (self.f)(self.source.new_value(rng)).new_value(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    source: S,
    reason: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.source.new_value(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 consecutive cases: {}",
            self.reason
        );
    }
}

/// Weighted choice among boxed strategies of one value type.
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! weights sum to zero");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, strat) in &self.arms {
            if pick < *w as u64 {
                return strat.new_value(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weight bookkeeping broken")
    }
}

/// Integer types usable as range strategies.
pub trait RangeValue: Copy {
    fn from_offset(lo: Self, offset: u64) -> Self;
    fn span(lo: Self, hi: Self) -> u64;
}

macro_rules! impl_range_value {
    ($($t:ty),*) => {$(
        impl RangeValue for $t {
            #[inline]
            fn from_offset(lo: Self, offset: u64) -> Self {
                lo.wrapping_add(offset as $t)
            }
            #[inline]
            fn span(lo: Self, hi: Self) -> u64 {
                (hi as u64).wrapping_sub(lo as u64)
            }
        }
    )*};
}

impl_range_value!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: RangeValue> Strategy for std::ops::Range<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        let span = T::span(self.start, self.end);
        assert!(span > 0, "empty range strategy");
        T::from_offset(self.start, rng.below(span))
    }
}

impl<T: RangeValue> Strategy for std::ops::RangeInclusive<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        let span = T::span(*self.start(), *self.end());
        if span == u64::MAX {
            return T::from_offset(*self.start(), rng.next_u64());
        }
        T::from_offset(*self.start(), rng.below(span + 1))
    }
}

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;
    fn new_value(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty f32 range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        (**self).new_value(rng)
    }
}
