//! `any::<T>()` — canonical strategies for primitive types.

use std::marker::PhantomData;

use crate::rng::TestRng;
use crate::strategy::Strategy;

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    fn generate(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[inline]
            fn generate(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    #[inline]
    fn generate(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    #[inline]
    fn generate(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

impl Arbitrary for char {
    #[inline]
    fn generate(rng: &mut TestRng) -> char {
        // Mostly ASCII, occasionally any scalar value.
        if rng.below(8) < 7 {
            (0x20 + rng.below(0x5F) as u32) as u8 as char
        } else {
            char::from_u32(rng.below(0x11_0000) as u32).unwrap_or('\u{FFFD}')
        }
    }
}

/// The strategy returned by [`any`].
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::generate(rng)
    }
}

/// Full-range strategy for a primitive type: `any::<u8>()`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}
