//! Boolean strategies.

use crate::rng::TestRng;
use crate::strategy::Strategy;

/// The strategy type of [`ANY`].
#[derive(Debug, Clone, Copy)]
pub struct Any;

/// Generates `true` and `false` with equal probability.
pub const ANY: Any = Any;

impl Strategy for Any {
    type Value = bool;
    fn new_value(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// `true` with the given probability.
pub fn weighted(p: f64) -> Weighted {
    Weighted(p)
}

/// See [`weighted`].
#[derive(Debug, Clone, Copy)]
pub struct Weighted(f64);

impl Strategy for Weighted {
    type Value = bool;
    fn new_value(&self, rng: &mut TestRng) -> bool {
        rng.unit_f64() < self.0
    }
}
