//! Collection strategies: `vec`, `btree_set`, `btree_map`.

use std::collections::{BTreeMap, BTreeSet};

use crate::rng::TestRng;
use crate::strategy::Strategy;

/// A `Vec` whose length is drawn from `size` and whose elements come from
/// `element`. `size` is any `usize` strategy — in practice a range like
/// `0..200` or `6..=6`.
pub fn vec<S, R>(element: S, size: R) -> VecStrategy<S, R>
where
    S: Strategy,
    R: Strategy<Value = usize>,
{
    VecStrategy { element, size }
}

/// See [`vec()`].
pub struct VecStrategy<S, R> {
    element: S,
    size: R,
}

impl<S, R> Strategy for VecStrategy<S, R>
where
    S: Strategy,
    R: Strategy<Value = usize>,
{
    type Value = Vec<S::Value>;
    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.new_value(rng);
        (0..n).map(|_| self.element.new_value(rng)).collect()
    }
}

/// A `BTreeSet` built from up to `size` draws of `element` (duplicates
/// collapse, exactly like real proptest's `btree_set`).
pub fn btree_set<S, R>(element: S, size: R) -> BTreeSetStrategy<S, R>
where
    S: Strategy,
    S::Value: Ord,
    R: Strategy<Value = usize>,
{
    BTreeSetStrategy { element, size }
}

/// See [`btree_set`].
pub struct BTreeSetStrategy<S, R> {
    element: S,
    size: R,
}

impl<S, R> Strategy for BTreeSetStrategy<S, R>
where
    S: Strategy,
    S::Value: Ord,
    R: Strategy<Value = usize>,
{
    type Value = BTreeSet<S::Value>;
    fn new_value(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let n = self.size.new_value(rng);
        (0..n).map(|_| self.element.new_value(rng)).collect()
    }
}

/// A `BTreeMap` built from up to `size` draws of `(key, value)`.
pub fn btree_map<K, V, R>(key: K, value: V, size: R) -> BTreeMapStrategy<K, V, R>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
    R: Strategy<Value = usize>,
{
    BTreeMapStrategy { key, value, size }
}

/// See [`btree_map`].
pub struct BTreeMapStrategy<K, V, R> {
    key: K,
    value: V,
    size: R,
}

impl<K, V, R> Strategy for BTreeMapStrategy<K, V, R>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
    R: Strategy<Value = usize>,
{
    type Value = BTreeMap<K::Value, V::Value>;
    fn new_value(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
        let n = self.size.new_value(rng);
        (0..n)
            .map(|_| (self.key.new_value(rng), self.value.new_value(rng)))
            .collect()
    }
}
