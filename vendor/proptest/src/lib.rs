//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so this
//! vendored crate implements the subset of proptest the workspace's
//! property suites use:
//!
//! - the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! - [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`],
//! - [`prop_oneof!`] (weighted and unweighted),
//! - the [`Strategy`](strategy::Strategy) trait with `prop_map`,
//! - range strategies (`0usize..32`, `1u64..=8`, `0.0f64..1.0`),
//!   tuple strategies, [`Just`](strategy::Just),
//!   [`any::<T>()`](arbitrary::any) and [`ANY`](bool::ANY),
//! - [`collection::vec`], [`collection::btree_set`] and
//!   [`collection::btree_map`].
//!
//! Semantics differ from real proptest in one deliberate way: there is
//! **no shrinking**. A failing case panics with the failing input's
//! `Debug` rendering and the deterministic seed, which is enough to
//! reproduce (runs are seeded from `PROPTEST_SEED`, default fixed).
//! Case counts honour `ProptestConfig::with_cases` and the
//! `PROPTEST_CASES` environment variable.

pub mod arbitrary;
pub mod bool;
pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

#[doc(hidden)]
pub mod rng;

/// `proptest!` — declare property tests.
///
/// Supported grammar (the subset real proptest documents):
///
/// ```text
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn name(x in strategy, y in strategy) { body }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident(
        $($arg:pat in $strat:expr),+ $(,)?
    ) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let mut runner = $crate::test_runner::TestRunner::new(config);
            let strategy = ($($strat,)+);
            let outcome = runner.run(&strategy, |($($arg,)+)| {
                $body
                Ok(())
            });
            if let Err(message) = outcome {
                panic!("{}", message);
            }
        }
    )*};
}

/// Assert inside a property; failure aborts only the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Assert two expressions are equal inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
            left, right, format!($($fmt)*)
        );
    }};
}

/// Assert two expressions are unequal inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            left
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `(left != right)`\n  both: `{:?}`: {}",
            left, format!($($fmt)*)
        );
    }};
}

/// Choose among strategies, optionally weighted:
/// `prop_oneof![a, b]` or `prop_oneof![3 => a, 1 => b]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}
