//! Test execution: configuration, errors, and the case loop.

use std::fmt;

use crate::rng::TestRng;
use crate::strategy::Strategy;

/// How many cases to run, honouring `PROPTEST_CASES` when the suite did
/// not pin a count. The default (64) keeps the full workspace run fast;
/// raise it for soak runs: `PROPTEST_CASES=1024 cargo test`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
    /// Unused by this stand-in (no shrinking); kept for source
    /// compatibility with configs that set it.
    pub max_shrink_iters: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        ProptestConfig {
            cases,
            max_shrink_iters: 0,
        }
    }
}

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property is violated.
    Fail(String),
    /// The input was rejected (e.g. by a filter); not a failure.
    Reject(String),
}

impl TestCaseError {
    pub fn fail(reason: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(reason.into())
    }
    pub fn reject(reason: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "{r}"),
            TestCaseError::Reject(r) => write!(f, "input rejected: {r}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

pub type TestCaseResult = Result<(), TestCaseError>;

/// Runs a strategy's cases against a property closure.
pub struct TestRunner {
    config: ProptestConfig,
    seed: u64,
}

impl TestRunner {
    pub fn new(config: ProptestConfig) -> TestRunner {
        let seed = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0x5EED_CAFE_F00D_u64);
        TestRunner { config, seed }
    }

    /// Runs `cases` generated inputs through `test`. Returns a report of
    /// the first failure (no shrinking), or `Ok` if every case passed.
    pub fn run<S>(
        &mut self,
        strategy: &S,
        test: impl Fn(S::Value) -> TestCaseResult,
    ) -> Result<(), String>
    where
        S: Strategy,
        S::Value: fmt::Debug + Clone,
    {
        for case in 0..self.config.cases {
            // Each case gets its own stream so a failure reproduces from
            // (seed, case) alone, independent of draw counts elsewhere.
            let mut rng = TestRng::new(self.seed ^ ((case as u64) << 32));
            let input = strategy.new_value(&mut rng);
            match test(input.clone()) {
                Ok(()) | Err(TestCaseError::Reject(_)) => {}
                Err(TestCaseError::Fail(reason)) => {
                    return Err(format!(
                        "proptest case {case}/{} failed: {reason}\n\
                         failing input: {input:#?}\n\
                         reproduce with PROPTEST_SEED={}",
                        self.config.cases, self.seed,
                    ));
                }
            }
        }
        Ok(())
    }
}
