//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so this
//! vendored crate implements the benchmarking surface the workspace's
//! benches use: [`Criterion::benchmark_group`], group `sample_size` /
//! `throughput` / `bench_function` / `finish`, [`Bencher::iter`] and
//! [`Bencher::iter_batched`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros (both positional
//! and `name = ...; config = ...; targets = ...` forms).
//!
//! Instead of criterion's full statistical pipeline it takes `sample_size`
//! timed samples after a short warm-up and prints min/median/mean per
//! benchmark — enough to compare hot paths between commits. Honour
//! `CRITERION_SAMPLE_MS` to change the per-sample time budget, and
//! `CRITERION_JSON=<path>` to additionally append one JSON object per
//! benchmark (`{"bench","min_ns","median_ns","mean_ns","samples"}`,
//! JSON-lines) — how the repo's committed `BENCH_*.json` baselines are
//! produced.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target time per measurement sample.
fn sample_budget() -> Duration {
    let ms = std::env::var("CRITERION_SAMPLE_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20u64);
    Duration::from_millis(ms)
}

/// How a batched routine's setup cost is amortised. The stand-in times
/// the routine alone regardless of variant, so these are interchangeable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Units for a group's reported throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Entry point handed to each benchmark function.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size,
            throughput: None,
        }
    }

    /// Bench outside any group (prints under the bare id).
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("").bench_function(id, f);
        self
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut samples = Vec::with_capacity(self.sample_size);
        // Warm-up: one untimed sample.
        let mut bencher = Bencher {
            per_iter: Duration::ZERO,
        };
        f(&mut bencher);
        for _ in 0..self.sample_size {
            let mut bencher = Bencher {
                per_iter: Duration::ZERO,
            };
            f(&mut bencher);
            samples.push(bencher.per_iter);
        }
        samples.sort();
        let min = samples[0];
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
        let prefix = if self.name.is_empty() {
            String::new()
        } else {
            format!("{}/", self.name)
        };
        let mut line = format!(
            "{prefix}{id}: min {:>12?}  median {:>12?}  mean {:>12?}  ({} samples)",
            min,
            median,
            mean,
            samples.len()
        );
        if let Some(t) = self.throughput {
            let per_sec = |n: u64| n as f64 / median.as_secs_f64().max(1e-12);
            match t {
                Throughput::Bytes(n) => {
                    line += &format!("  {:.1} MiB/s", per_sec(n) / (1024.0 * 1024.0));
                }
                Throughput::Elements(n) => {
                    line += &format!("  {:.0} elem/s", per_sec(n));
                }
            }
        }
        println!("{line}");
        if let Ok(path) = std::env::var("CRITERION_JSON") {
            use std::io::Write as _;
            let obj = format!(
                "{{\"bench\":\"{prefix}{id}\",\"min_ns\":{},\"median_ns\":{},\"mean_ns\":{},\"samples\":{}}}\n",
                min.as_nanos(),
                median.as_nanos(),
                mean.as_nanos(),
                samples.len()
            );
            let _ = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .and_then(|mut f| f.write_all(obj.as_bytes()));
        }
        self
    }

    pub fn finish(&mut self) {}
}

/// Times closures; handed to the benchmark body.
pub struct Bencher {
    per_iter: Duration,
}

impl Bencher {
    /// Times `routine` repeatedly within the sample budget and records the
    /// mean per-iteration time.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let budget = sample_budget();
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            black_box(routine());
            iters += 1;
            if start.elapsed() >= budget {
                break;
            }
        }
        self.per_iter = start.elapsed() / iters.max(1) as u32;
    }

    /// Like [`Bencher::iter`] but with untimed per-iteration setup.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let budget = sample_budget();
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        while total < budget {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
            iters += 1;
        }
        self.per_iter = total / iters.max(1) as u32;
    }
}

/// Declares a benchmark group runner function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
