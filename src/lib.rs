//! # Rebound — scalable checkpointing for coherent shared memory
//!
//! A full Rust reproduction of *"Rebound: Scalable Checkpointing for
//! Coherent Shared Memory"* (ISCA 2011 / UIUC MS thesis, Agarwal &
//! Torrellas): the first hardware-based scheme for **coordinated local
//! checkpointing** in multiprocessors with directory-based cache
//! coherence.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | Crate | Contents |
//! |---|---|
//! | [`engine`] | event queue, clock, deterministic RNG, statistics |
//! | [`mem`] | caches, main memory, memory controllers, the undo log |
//! | [`coherence`] | MESI full-map directory with LW-ID, message stats |
//! | [`core`] | the `Machine`: dependence tracking, checkpoint/rollback protocols, delayed writebacks, barrier optimization, Global baselines, fault injection |
//! | [`workloads`] | synthetic SPLASH-2 / PARSEC / Apache application models |
//! | [`power`] | activity-based energy/power model |
//! | [`swdep`] | §8: software dependence tracking for non-coherent manycores |
//! | [`nvm`] | §8: the undo log on non-volatile memory (PCM timing, wear, lifetime) |
//! | [`trace`] | Pin-frontend analogue: RBTR op-trace record/replay |
//! | [`harness`] | parallel experiment campaigns with a differential recovery oracle |
//!
//! # Quick start
//!
//! ```
//! use rebound::core::{Machine, MachineConfig, Scheme};
//! use rebound::workloads::profile_named;
//!
//! // An 8-core machine running the Barnes model under Rebound.
//! let mut cfg = MachineConfig::small(8);
//! cfg.scheme = Scheme::REBOUND;
//! cfg.ckpt_interval_insts = 20_000;
//! let profile = profile_named("Barnes").unwrap();
//! let mut machine = Machine::from_profile(&cfg, &profile, 60_000);
//! let report = machine.run_to_completion();
//! println!(
//!     "{} checkpoints, mean interaction set {:.1} of {} cores",
//!     report.checkpoints,
//!     report.metrics.ichk_sizes.mean(),
//!     report.cores,
//! );
//! ```

pub use rebound_coherence as coherence;
pub use rebound_core as core;
pub use rebound_engine as engine;
pub use rebound_harness as harness;
pub use rebound_mem as mem;
pub use rebound_nvm as nvm;
pub use rebound_power as power;
pub use rebound_swdep as swdep;
pub use rebound_trace as trace;
pub use rebound_workloads as workloads;

pub use rebound_core::{Machine, MachineConfig, RunReport, Scheme};
pub use rebound_harness::{
    run_campaign, CampaignResult, CampaignSpec, FaultPhase, FaultPlan, FaultSpec, FaultTrigger,
    GoldenCache, GoldenSnapshot, Shard, Store,
};
pub use rebound_workloads::{all_profiles, profile_named, AppProfile};
